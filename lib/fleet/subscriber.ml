module Repo = Ksplice.Repository

type policy = {
  retries : int;
  backoff_base : int;
  backoff_cap : int;
  jitter : int;
  seed : int;
}

let default_policy =
  { retries = 5; backoff_base = 100; backoff_cap = 1600; jitter = 64; seed = 0 }

(* the Manager's jitter hash, so fleet retries replay bit-identically
   for a given (seed, id, attempt) just like manager retries do *)
let jitter ~seed ~id ~attempt ~bound =
  if bound <= 0 then 0
  else begin
    let h = ref (seed lxor 0x9e3779b9) in
    let feed v =
      h := !h lxor v;
      h := !h * 0x85ebca6b land 0x3fffffff;
      h := (!h lxor (!h lsr 13)) land 0x3fffffff
    in
    String.iter (fun c -> feed (Char.code c)) id;
    feed (attempt * 0x27d4eb2f);
    !h mod bound
  end

let retry_delay pol ~id ~attempt =
  let expo = pol.backoff_base * (1 lsl min (attempt - 1) 20) in
  min pol.backoff_cap expo
  + jitter ~seed:pol.seed ~id ~attempt ~bound:pol.jitter

type error =
  | Transport of Transport.recv_error
  | Protocol of string
  | Server of { code : string; msg : string }
  | Digest_mismatch of { digest : string }

let pp_error ppf = function
  | Transport e -> Transport.pp_recv_error ppf e
  | Protocol m -> Format.fprintf ppf "protocol violation: %s" m
  | Server { code; msg } -> Format.fprintf ppf "server error [%s] %s" code msg
  | Digest_mismatch { digest } ->
    Format.fprintf ppf "received bytes do not digest to %s" digest

let head_ref = "fleet:head"

let head store ~base =
  match Store.find_ref store head_ref with
  | None -> base
  | Some d -> ( match Store.get store d with Some h -> h | None -> base)

(* running totals across the attempts of one [sync] *)
type totals = {
  mutable committed : int;
  mutable blobs_fetched : int;
  mutable bytes_fetched : int;
  mutable bytes_saved : int;
  mutable redundant : int;
  mutable dups : int;
}

let check_linkage head0 (items : Wire.manifest_item list) =
  let rec go expect = function
    | [] -> Ok ()
    | (i : Wire.manifest_item) :: rest ->
      if not (String.equal i.mi_base expect) then
        Error
          (Protocol
             (Printf.sprintf "manifest chain broken: expected base %s, got %s"
                expect i.mi_base))
      else if String.equal i.mi_next i.mi_base then
        Error (Protocol "manifest entry maps a source state to itself")
      else go i.mi_next rest
  in
  go head0 items

(* commit every leading manifest entry whose blob and re-derived object
   closure are all locally present: the ref flip (entry + head) is one
   journal record, so a kill between blobs leaves the chain at the last
   whole entry *)
let commit_ready store (items : Wire.manifest_item array) committed totals =
  let rec go () =
    if !committed < Array.length items then begin
      let i = items.(!committed) in
      match Store.get store i.mi_blob with
      | None -> ()
      | Some raw ->
        if List.for_all (Store.mem store) (Repo.closure raw) then begin
          (* the ref name comes from the verified bytes, not the
             manifest: a cumulative entry lands under its cumulative
             ref so a later local sync takes the one-hop route *)
          let ref_name =
            Option.value (Repo.blob_ref raw)
              ~default:(Repo.entry_ref i.mi_base)
          in
          Store.with_txn store (fun () ->
              let hd = Store.put store i.mi_next in
              Store.commit_refs store
                [ (ref_name, i.mi_blob); (head_ref, hd) ]);
          incr committed;
          totals.committed <- totals.committed + 1;
          go ()
        end
    end
  in
  go ()

let sync_once ~id ~store ~base totals (tr : Transport.t) =
  let r = Transport.reader tr in
  let send f = Result.map_error (fun e -> Transport e) (Transport.send_frame tr f) in
  let recv () = Result.map_error (fun e -> Transport e) (Transport.recv_frame r) in
  let ( let* ) = Result.bind in
  let* () = send (Wire.Hello { version = Wire.version; peer = id }) in
  let* ack = recv () in
  let* () =
    match ack with
    | Wire.Hello_ack { version; _ } when version = Wire.version -> Ok ()
    | Wire.Hello_ack { version; _ } ->
      Error (Protocol (Printf.sprintf "server speaks v%d" version))
    | Wire.Err { code; msg } -> Error (Server { code; msg })
    | f -> Error (Protocol (Format.asprintf "expected hello-ack, got %a" Wire.pp_frame f))
  in
  let head0 = head store ~base in
  let* () = send (Wire.Head { digest = head0 }) in
  let* m = recv () in
  let* items =
    match m with
    | Wire.Manifest items -> Ok items
    | Wire.Err { code; msg } -> Error (Server { code; msg })
    | f -> Error (Protocol (Format.asprintf "expected manifest, got %a" Wire.pp_frame f))
  in
  let* () = check_linkage head0 items in
  let server_head =
    match List.rev items with [] -> head0 | last :: _ -> last.Wire.mi_next
  in
  (* delta sync: want only what the store lacks, oldest entry first;
     account the bytes the CAS already holds as saved *)
  let present = Hashtbl.create 64 in
  let wanted = Hashtbl.create 64 in
  let wants = ref [] in
  let consider d size =
    if not (Hashtbl.mem present d || Hashtbl.mem wanted d) then
      if Store.mem store d then begin
        Hashtbl.replace present d ();
        totals.bytes_saved <- totals.bytes_saved + size
      end
      else begin
        Hashtbl.replace wanted d ();
        wants := d :: !wants
      end
  in
  List.iter
    (fun (i : Wire.manifest_item) ->
      consider i.mi_blob i.mi_size;
      List.iter (fun (d, sz) -> consider d sz) i.mi_objects)
    items;
  let wants = List.rev !wants in
  let items = Array.of_list items in
  let committed = ref 0 in
  commit_ready store items committed totals;
  let* () = send (Wire.Want wants) in
  let outstanding = Hashtbl.copy wanted in
  let rec stream () =
    let* f = recv () in
    match f with
    | Wire.Blob { digest; bytes } ->
      if not (Hashtbl.mem outstanding digest) then begin
        (* duplicate delivery or an unsolicited blob: tolerated, never
           verified or stored — it cannot displace verified bytes *)
        totals.dups <- totals.dups + 1;
        stream ()
      end
      else if not (String.equal (Store.digest_of_string bytes) digest) then
        Error (Digest_mismatch { digest })
      else begin
        if Hashtbl.mem present digest then
          totals.redundant <- totals.redundant + 1;
        let (_ : string) = Store.put store bytes in
        Hashtbl.remove outstanding digest;
        totals.blobs_fetched <- totals.blobs_fetched + 1;
        totals.bytes_fetched <- totals.bytes_fetched + String.length bytes;
        commit_ready store items committed totals;
        stream ()
      end
    | Wire.Done { head = h } ->
      if not (String.equal h server_head) then
        Error
          (Protocol
             (Printf.sprintf "done head %s contradicts manifest head %s" h
                server_head))
      else if Hashtbl.length outstanding > 0 then
        Error
          (Protocol
             (Printf.sprintf "done with %d blobs still outstanding"
                (Hashtbl.length outstanding)))
      else if !committed < Array.length items then
        Error
          (Protocol
             (Printf.sprintf
                "done with entry %d uncommitted: manifest object set was \
                 incomplete"
                !committed))
      else Ok server_head
    | Wire.Err { code; msg } -> Error (Server { code; msg })
    | f ->
      Error (Protocol (Format.asprintf "expected blob or done, got %a" Wire.pp_frame f))
  in
  stream ()

type report = {
  r_head : string;
  r_synced : bool;
  r_attempts : int;
  r_delays : int list;
  r_committed : int;
  r_blobs_fetched : int;
  r_bytes_fetched : int;
  r_bytes_saved : int;
  r_redundant : int;
  r_dups : int;
  r_log : string list;
}

let sync ?(policy = default_policy) ?(sleep = fun _ -> ()) ?(id = "subscriber")
    ~store ~base ~connect () =
  let totals =
    { committed = 0; blobs_fetched = 0; bytes_fetched = 0; bytes_saved = 0;
      redundant = 0; dups = 0 }
  in
  let finish ~head:r_head ~synced ~attempts ~delays ~log =
    {
      r_head;
      r_synced = synced;
      r_attempts = attempts;
      r_delays = List.rev delays;
      r_committed = totals.committed;
      r_blobs_fetched = totals.blobs_fetched;
      r_bytes_fetched = totals.bytes_fetched;
      r_bytes_saved = totals.bytes_saved;
      r_redundant = totals.redundant;
      r_dups = totals.dups;
      r_log = List.rev log;
    }
  in
  let rec attempt n delays log =
    if n > policy.retries then
      (* graceful degradation: every attempt failed — keep serving the
         old chain head; everything durably committed so far stays *)
      finish ~head:(head store ~base) ~synced:false ~attempts:(n - 1) ~delays
        ~log
    else
      let outcome =
        match connect n with
        | None -> Error "connect refused"
        | Some tr ->
          let res = sync_once ~id ~store ~base totals tr in
          tr.Transport.close ();
          Result.map_error (Format.asprintf "%a" pp_error) res
      in
      match outcome with
      | Ok h -> finish ~head:h ~synced:true ~attempts:n ~delays ~log
      | Error e ->
        let log = Printf.sprintf "attempt %d: %s" n e :: log in
        if n >= policy.retries then
          finish ~head:(head store ~base) ~synced:false ~attempts:n ~delays
            ~log
        else begin
          let d = retry_delay policy ~id ~attempt:n in
          sleep d;
          attempt (n + 1) (d :: delays) log
        end
  in
  attempt 1 [] []
