(* Typed, resolved AST: the typechecker lowers MiniC into this form, in
   which every memory access is an explicit load/store at a computed
   address and a known width, implicit integer widenings are explicit
   nodes, and pointer arithmetic is already scaled. The code generator is
   consequently a direct translation. *)

type mem_width = M8 | M16 | M32

(* Sign-extension inserted by the compiler: after sub-word loads and at
   call boundaries for char/short parameters and returns. These are the
   "implicit casting" effects the paper's §3.1 example turns on: changing
   a prototype from int to char changes the *callers'* object code. *)
type widen = Wsext8 | Wsext16

type builtin = {
  b_name : string;
  b_code : int;  (* INT escape number *)
  b_args : int;  (* argument count, passed in r1..r3 *)
  b_ret : bool;  (* result in r0 *)
}

type texpr = { desc : tdesc; ty : Ast.ty }

and tdesc =
  | Tconst of int32
  | Tstring of string
  | Tlocal_get of int
  | Tlocal_set of int * texpr
  | Tlocal_addr of int
  | Tparam_get of int
  | Tparam_set of int * texpr
  | Tparam_addr of int
  | Tsym_addr of string  (* address of a data symbol or function *)
  | Tload of mem_width * texpr
  | Tstore of mem_width * texpr * texpr  (* addr, value; yields value *)
  | Tseq of texpr * texpr  (* evaluate both; the first's value is dropped *)
  | Tbin of Ast.binop * texpr * texpr
  | Tun of Ast.unop * texpr
  | Twiden of widen * texpr
  | Tcall of string * texpr list  (* direct call, args already widened *)
  | Tbuiltin of builtin * texpr list
  | Ticall of texpr * texpr list  (* indirect call through a value *)

type tstmt =
  | TSexpr of texpr
  | TSif of texpr * tstmt list * tstmt list
  (* Unified loop: [cond] checked at top (None = forever), [step] runs
     after the body and is the target of continue. *)
  | TSloop of texpr option * texpr option * tstmt list
  (* do-while: body first, condition at the bottom *)
  | TSdowhile of tstmt list * texpr
  (* switch: cases in order; a [None] constant is default; each body
     falls through into the next *)
  | TSswitch of texpr * (int32 option * tstmt list) list
  | TSreturn of texpr option
  | TSbreak
  | TScontinue

(* a local variable slot within a function frame *)
type local = {
  l_id : int;
  l_ty : Ast.ty;
  l_size : int;  (* bytes in the frame, >= 4 *)
}

type tfunc = {
  tf_name : string;
  tf_static : bool;
  tf_inline : bool;  (* declared inline in the source *)
  tf_ret : Ast.ty;
  tf_params : (Ast.ty * string) list;
  tf_locals : local list;
  tf_body : tstmt list;
}

(* initialised data item *)
type ginit =
  | Gzero of int  (* n zero bytes (bss) *)
  | Gbytes of Bytes.t
  | Gwords of gword list

and gword =
  | Wconst of int32
  | Waddr of string * int32  (* symbol + offset: becomes an Abs32 reloc *)

type gitem = {
  gi_name : string;  (* symbol name (static locals are pre-mangled) *)
  gi_static : bool;
  gi_ty : Ast.ty;
  gi_init : ginit;
}

type tunit = {
  tu_name : string;
  tu_funcs : tfunc list;
  tu_globals : gitem list;
  tu_hooks : (Ast.hook_kind * string) list;
  (* names of functions defined in this unit (for call resolution) *)
  tu_defined_funcs : string list;
}
