(* Abstract syntax for MiniC, the C subset the simulated kernel is written
   in. The subset is chosen to exercise every language feature the paper's
   object-code argument leans on: static file-scope variables and functions
   (ambiguous symbols), static locals, implicit integer widening at call
   boundaries, small functions subject to automatic inlining, structs and
   pointers, and Ksplice's custom-code hooks. *)

type ty =
  | Void
  | Char
  | Short
  | Int
  | Ptr of ty
  | Array of ty * int
  | Struct of string

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Band | Bor | Bxor | Bshl | Bshr
  | Beq | Bne | Blt | Ble | Bgt | Bge
  | Bland | Blor  (* short-circuit && and || *)

type unop = Uneg | Unot (* logical ! *) | Ubnot (* bitwise ~ *)

type expr =
  | Eint of int32
  | Echar of char
  | Estr of string
  | Eident of string
  | Ecall of string * expr list  (* direct call or builtin *)
  | Eicall of expr * expr list  (* indirect call through a value *)
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Ederef of expr
  | Eaddr of expr  (* &lvalue or &function *)
  | Eindex of expr * expr  (* a[i] *)
  | Efield of expr * string  (* e.f  (e a struct lvalue) *)
  | Earrow of expr * string  (* e->f *)
  | Eassign of expr * expr  (* lvalue = e *)
  | Ecompound of binop * expr * expr  (* lvalue op= e; lvalue evaluated once *)
  | Epostop of binop * expr  (* lvalue++/--: yields the pre-update value *)
  | Ecast of ty * expr
  | Esizeof of ty

type stmt =
  | Sexpr of expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdowhile of stmt list * expr
  | Sfor of expr option * expr option * expr option * stmt list
  | Sswitch of expr * switch_case list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sdecl of decl
  | Sblock of stmt list

and switch_case = {
  sc_const : expr option;  (* None for default: *)
  sc_body : stmt list;  (* falls through to the next case *)
}

and decl = {
  d_static : bool;  (* static local: becomes a hidden data symbol *)
  d_ty : ty;
  d_name : string;
  d_init : expr option;
}

type initializer_ =
  | Init_scalar of expr  (* must be a constant expression *)
  | Init_string of string
  | Init_list of expr list

type global = {
  g_static : bool;
  g_extern : bool;  (* declaration only; storage lives in another unit *)
  g_ty : ty;
  g_name : string;
  g_init : initializer_ option;
}

type func = {
  f_static : bool;
  f_inline : bool;
  f_ret : ty;
  f_name : string;
  f_params : (ty * string) list;
  f_body : stmt list option;  (* None for a declaration/prototype *)
}

(* Ksplice custom-code hook registrations (paper §5.3): each emits a
   function pointer into a special .ksplice.* section. *)
type hook_kind =
  | Hook_apply
  | Hook_pre_apply
  | Hook_post_apply
  | Hook_reverse
  | Hook_pre_reverse
  | Hook_post_reverse
  (* shadow-variable hooks: constructors run once the replacement code is
     live, destructors when the update is removed (§5.3's shadow data
     structures — patches that extend a struct layout) *)
  | Hook_shadow_ctor
  | Hook_shadow_dtor

let hook_section = function
  | Hook_apply -> ".ksplice.apply"
  | Hook_pre_apply -> ".ksplice.pre_apply"
  | Hook_post_apply -> ".ksplice.post_apply"
  | Hook_reverse -> ".ksplice.reverse"
  | Hook_pre_reverse -> ".ksplice.pre_reverse"
  | Hook_post_reverse -> ".ksplice.post_reverse"
  | Hook_shadow_ctor -> ".ksplice.shadow_ctor"
  | Hook_shadow_dtor -> ".ksplice.shadow_dtor"

let hook_of_keyword = function
  | "ksplice_apply" -> Some Hook_apply
  | "ksplice_pre_apply" -> Some Hook_pre_apply
  | "ksplice_post_apply" -> Some Hook_post_apply
  | "ksplice_reverse" -> Some Hook_reverse
  | "ksplice_pre_reverse" -> Some Hook_pre_reverse
  | "ksplice_post_reverse" -> Some Hook_post_reverse
  | "ksplice_shadow_ctor" -> Some Hook_shadow_ctor
  | "ksplice_shadow_dtor" -> Some Hook_shadow_dtor
  | _ -> None

type struct_def = {
  s_name : string;
  s_fields : (ty * string) list;
}

type topdecl =
  | Tstruct of struct_def
  | Tglobal of global
  | Tfunc of func
  | Thook of hook_kind * string  (* hook kind, function name *)

type program = topdecl list

let rec string_of_ty = function
  | Void -> "void"
  | Char -> "char"
  | Short -> "short"
  | Int -> "int"
  | Ptr t -> string_of_ty t ^ "*"
  | Array (t, n) -> Printf.sprintf "%s[%d]" (string_of_ty t) n
  | Struct s -> "struct " ^ s
