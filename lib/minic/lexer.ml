type token =
  | INT of int32
  | CHARLIT of char
  | STRING of string
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type t = {
  tok : token;
  line : int;
}

exception Error of { line : int; msg : string }

let err line fmt =
  Format.kasprintf (fun msg -> raise (Error { line; msg })) fmt

let keywords =
  [ "void"; "char"; "short"; "int"; "struct"; "if"; "else"; "while"; "for";
    "do"; "switch"; "case"; "default";
    "return"; "break"; "continue"; "static"; "inline"; "extern"; "sizeof";
    "ksplice_apply"; "ksplice_pre_apply"; "ksplice_post_apply";
    "ksplice_reverse"; "ksplice_pre_reverse"; "ksplice_post_reverse";
    "ksplice_shadow_ctor"; "ksplice_shadow_dtor" ]

let is_ident_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
  | _ -> false

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

(* multi-char punctuation, longest first *)
let puncts =
  [ "<<="; ">>=";
    "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "->";
    "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "++"; "--";
    "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "!"; "~"; "<"; ">"; "=";
    "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "."; ":" ]

let unescape_char line = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> err line "bad escape \\%c" c

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let push tok = toks := { tok; line = !line } :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while not !closed do
        if !i + 1 >= n then err !line "unterminated comment"
        else if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          i := !i + 2;
          closed := true
        end
        else begin
          if src.[!i] = '\n' then incr line;
          incr i
        end
      done
    end
    else if is_digit c then begin
      let start = !i in
      if c = '0' && !i + 1 < n && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X')
      then begin
        i := !i + 2;
        while
          !i < n
          && (is_digit src.[!i]
              || match src.[!i] with 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
        do
          incr i
        done
      end
      else
        while !i < n && is_digit src.[!i] do
          incr i
        done;
      let s = String.sub src start (!i - start) in
      match Int32.of_string_opt s with
      | Some v -> push (INT v)
      | None -> err !line "bad integer literal %S" s
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let s = String.sub src start (!i - start) in
      if List.mem s keywords then push (KW s) else push (IDENT s)
    end
    else if c = '"' then begin
      incr i;
      let b = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !i >= n then err !line "unterminated string"
        else if src.[!i] = '"' then begin
          incr i;
          closed := true
        end
        else if src.[!i] = '\\' then begin
          if !i + 1 >= n then err !line "unterminated string";
          Buffer.add_char b (unescape_char !line src.[!i + 1]);
          i := !i + 2
        end
        else begin
          if src.[!i] = '\n' then err !line "newline in string";
          Buffer.add_char b src.[!i];
          incr i
        end
      done;
      push (STRING (Buffer.contents b))
    end
    else if c = '\'' then begin
      if !i + 2 >= n then err !line "bad char literal";
      if src.[!i + 1] = '\\' then begin
        if !i + 3 >= n || src.[!i + 3] <> '\'' then err !line "bad char literal";
        push (CHARLIT (unescape_char !line src.[!i + 2]));
        i := !i + 4
      end
      else begin
        if src.[!i + 2] <> '\'' then err !line "bad char literal";
        push (CHARLIT src.[!i + 1]);
        i := !i + 3
      end
    end
    else begin
      let matched =
        List.find_opt
          (fun p ->
            let l = String.length p in
            !i + l <= n && String.sub src !i l = p)
          puncts
      in
      match matched with
      | Some p ->
        push (PUNCT p);
        i := !i + String.length p
      | None -> err !line "unexpected character %C" c
    end
  done;
  push EOF;
  List.rev !toks
