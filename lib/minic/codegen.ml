open Tast
module Isa = Vmisa.Isa
module Reloc = Objfile.Reloc
module Symbol = Objfile.Symbol
module Section = Objfile.Section
module Frag = Asm.Frag

type options = {
  function_sections : bool;
  align_loops : bool;
}

let run_options = { function_sections = false; align_loops = true }
let pre_options = { function_sections = true; align_loops = false }

let param_offset i = 8 + (4 * i)

(* --- per-unit emission state --- *)

type ustate = {
  opts : options;
  tunit : tunit;
  mutable label_counter : int;
  (* interned string literals: contents -> local symbol *)
  strings : (string, string) Hashtbl.t;
  mutable string_order : (string * string) list; (* sym, contents; reversed *)
  mutable sections : Section.t list; (* reversed *)
  mutable symbols : Symbol.t list; (* reversed *)
}

let fresh_label u =
  let n = u.label_counter in
  u.label_counter <- n + 1;
  Printf.sprintf ".L%d" n

let intern_string u s =
  match Hashtbl.find_opt u.strings s with
  | Some sym -> sym
  | None ->
    let sym = Printf.sprintf ".Lstr%d" (Hashtbl.length u.strings) in
    Hashtbl.replace u.strings s sym;
    u.string_order <- (sym, s) :: u.string_order;
    sym

(* --- function codegen --- *)

type fstate = {
  u : ustate;
  frag : Frag.t;
  slot_offset : (int, int) Hashtbl.t;  (* local slot -> fp-relative offset *)
  ret_label : string;
  mutable continue_labels : string list;  (* innermost loop step *)
  mutable break_labels : string list;  (* innermost loop or switch end *)
}

let r0 = Isa.R0
let r1 = Isa.R1
let fp = Isa.R6
let sp = Isa.SP

let emit f i = Frag.insn f.frag i

let width_of = function M8 -> Isa.W8 | M16 -> Isa.W16 | M32 -> Isa.W32

(* is [callee] defined in this unit (a direct intra-unit call)? *)
let defined_here u name = List.mem name u.tunit.tu_defined_funcs

let call_direct f name =
  if defined_here f.u name && not f.u.opts.function_sections then
    (* same fragment: resolved displacement, no relocation *)
    Frag.jump f.frag Isa.Ccall name
  else Frag.jump_reloc f.frag Isa.Ccall name

(* Evaluate [e] into r0. The only registers gen_expr uses are r0 and r1
   plus pushes/pops for temporaries, so values never live across calls in
   registers. *)
let rec gen_expr f (e : texpr) =
  match e.desc with
  | Tconst v -> emit f (Isa.Mov_ri (r0, v))
  | Tstring s ->
    let sym = intern_string f.u s in
    Frag.insn_reloc f.frag (Isa.Mov_ri (r0, 0l)) Reloc.Abs32 sym 0l
  | Tlocal_get slot ->
    emit f (Isa.Load (Isa.W32, r0, fp, Hashtbl.find f.slot_offset slot))
  | Tlocal_set (slot, v) ->
    gen_expr f v;
    emit f (Isa.Store (Isa.W32, fp, Hashtbl.find f.slot_offset slot, r0))
  | Tlocal_addr slot ->
    emit f (Isa.Mov_rr (r0, fp));
    emit f (Isa.Addi (r0, Int32.of_int (Hashtbl.find f.slot_offset slot)))
  | Tparam_get i -> emit f (Isa.Load (Isa.W32, r0, fp, param_offset i))
  | Tparam_set (i, v) ->
    gen_expr f v;
    emit f (Isa.Store (Isa.W32, fp, param_offset i, r0))
  | Tparam_addr i ->
    emit f (Isa.Mov_rr (r0, fp));
    emit f (Isa.Addi (r0, Int32.of_int (param_offset i)))
  | Tsym_addr s -> Frag.insn_reloc f.frag (Isa.Mov_ri (r0, 0l)) Reloc.Abs32 s 0l
  | Tload (w, addr) ->
    gen_expr f addr;
    emit f (Isa.Load (width_of w, r0, r0, 0))
  | Tstore (w, addr, v) ->
    gen_expr f v;
    emit f (Isa.Push r0);
    gen_expr f addr;
    emit f (Isa.Pop r1);
    emit f (Isa.Store (width_of w, r0, 0, r1));
    emit f (Isa.Mov_rr (r0, r1))
  | Tseq (a, b) ->
    gen_expr f a;
    gen_expr f b
  | Tbin (op, a, b) -> gen_binop f op a b
  | Tun (op, a) ->
    gen_expr f a;
    (match op with
     | Ast.Uneg -> emit f (Isa.Neg r0)
     | Ast.Ubnot -> emit f (Isa.Not r0)
     | Ast.Unot ->
       emit f (Isa.Cmpi (r0, 0l));
       emit f (Isa.Setcc (Isa.Eq, r0)))
  | Twiden (w, a) ->
    gen_expr f a;
    (match w with
     | Wsext8 -> emit f (Isa.Sext8 r0)
     | Wsext16 -> emit f (Isa.Sext16 r0))
  | Tcall (name, args) ->
    let n = List.length args in
    List.iter
      (fun a ->
        gen_expr f a;
        emit f (Isa.Push r0))
      (List.rev args);
    call_direct f name;
    if n > 0 then emit f (Isa.Addi (sp, Int32.of_int (4 * n)))
  | Tbuiltin (b, args) ->
    (* arguments land in r0.. (syscalls) or r1.. (other escapes) *)
    List.iter
      (fun a ->
        gen_expr f a;
        emit f (Isa.Push r0))
      args;
    let base = if b.b_code = 0x80 then 0 else 1 in
    List.rev (List.init (List.length args) (fun i -> i))
    |> List.iter (fun i ->
         match Isa.reg_of_int (base + i) with
         | Some r -> emit f (Isa.Pop r)
         | None -> invalid_arg "too many builtin arguments");
    emit f (Isa.Int b.b_code)
  | Ticall (callee, args) ->
    let n = List.length args in
    List.iter
      (fun a ->
        gen_expr f a;
        emit f (Isa.Push r0))
      (List.rev args);
    gen_expr f callee;
    emit f (Isa.Call_r r0);
    if n > 0 then emit f (Isa.Addi (sp, Int32.of_int (4 * n)))

and gen_binop f op a b =
  let arith mk_insn =
    gen_expr f a;
    emit f (Isa.Push r0);
    gen_expr f b;
    emit f (Isa.Mov_rr (r1, r0));
    emit f (Isa.Pop r0);
    emit f (mk_insn r0 r1)
  in
  let compare cond =
    gen_expr f a;
    emit f (Isa.Push r0);
    gen_expr f b;
    emit f (Isa.Mov_rr (r1, r0));
    emit f (Isa.Pop r0);
    emit f (Isa.Cmp (r0, r1));
    emit f (Isa.Setcc (cond, r0))
  in
  match op with
  | Ast.Badd -> arith (fun a b -> Isa.Add (a, b))
  | Ast.Bsub -> arith (fun a b -> Isa.Sub (a, b))
  | Ast.Bmul -> arith (fun a b -> Isa.Mul (a, b))
  | Ast.Bdiv -> arith (fun a b -> Isa.Div (a, b))
  | Ast.Bmod -> arith (fun a b -> Isa.Mod (a, b))
  | Ast.Band -> arith (fun a b -> Isa.And (a, b))
  | Ast.Bor -> arith (fun a b -> Isa.Or (a, b))
  | Ast.Bxor -> arith (fun a b -> Isa.Xor (a, b))
  | Ast.Bshl -> arith (fun a b -> Isa.Shl (a, b))
  | Ast.Bshr -> arith (fun a b -> Isa.Sar (a, b)) (* C >> on int: arithmetic *)
  | Ast.Beq -> compare Isa.Eq
  | Ast.Bne -> compare Isa.Ne
  | Ast.Blt -> compare Isa.Lt
  | Ast.Ble -> compare Isa.Le
  | Ast.Bgt -> compare Isa.Gt
  | Ast.Bge -> compare Isa.Ge
  | Ast.Bland ->
    (* a && b: 0 if a is 0, else (b != 0) *)
    let l_false = fresh_label f.u and l_end = fresh_label f.u in
    gen_expr f a;
    emit f (Isa.Cmpi (r0, 0l));
    Frag.jump f.frag (Isa.Cjcc Isa.Eq) l_false;
    gen_expr f b;
    emit f (Isa.Cmpi (r0, 0l));
    emit f (Isa.Setcc (Isa.Ne, r0));
    Frag.jump f.frag Isa.Cjmp l_end;
    Frag.label f.frag l_false;
    emit f (Isa.Mov_ri (r0, 0l));
    Frag.label f.frag l_end
  | Ast.Blor ->
    let l_true = fresh_label f.u and l_end = fresh_label f.u in
    gen_expr f a;
    emit f (Isa.Cmpi (r0, 0l));
    Frag.jump f.frag (Isa.Cjcc Isa.Ne) l_true;
    gen_expr f b;
    emit f (Isa.Cmpi (r0, 0l));
    emit f (Isa.Setcc (Isa.Ne, r0));
    Frag.jump f.frag Isa.Cjmp l_end;
    Frag.label f.frag l_true;
    emit f (Isa.Mov_ri (r0, 1l));
    Frag.label f.frag l_end

let rec gen_stmts f stmts = List.iter (gen_stmt f) stmts

and gen_stmt f (s : tstmt) =
  match s with
  | TSexpr e -> gen_expr f e
  | TSif (cond, then_, else_) ->
    let l_else = fresh_label f.u in
    gen_expr f cond;
    emit f (Isa.Cmpi (r0, 0l));
    Frag.jump f.frag (Isa.Cjcc Isa.Eq) l_else;
    gen_stmts f then_;
    if else_ = [] then Frag.label f.frag l_else
    else begin
      let l_end = fresh_label f.u in
      Frag.jump f.frag Isa.Cjmp l_end;
      Frag.label f.frag l_else;
      gen_stmts f else_;
      Frag.label f.frag l_end
    end
  | TSloop (cond, step, body) ->
    let l_head = fresh_label f.u in
    let l_cont = fresh_label f.u in
    let l_end = fresh_label f.u in
    if f.u.opts.align_loops then Frag.align f.frag 4;
    Frag.label f.frag l_head;
    (match cond with
     | Some c ->
       gen_expr f c;
       emit f (Isa.Cmpi (r0, 0l));
       Frag.jump f.frag (Isa.Cjcc Isa.Eq) l_end
     | None -> ());
    f.continue_labels <- l_cont :: f.continue_labels;
    f.break_labels <- l_end :: f.break_labels;
    gen_stmts f body;
    f.continue_labels <- List.tl f.continue_labels;
    f.break_labels <- List.tl f.break_labels;
    Frag.label f.frag l_cont;
    (match step with Some e -> gen_expr f e | None -> ());
    Frag.jump f.frag Isa.Cjmp l_head;
    Frag.label f.frag l_end
  | TSdowhile (body, cond) ->
    let l_body = fresh_label f.u in
    let l_cont = fresh_label f.u in
    let l_end = fresh_label f.u in
    if f.u.opts.align_loops then Frag.align f.frag 4;
    Frag.label f.frag l_body;
    f.continue_labels <- l_cont :: f.continue_labels;
    f.break_labels <- l_end :: f.break_labels;
    gen_stmts f body;
    f.continue_labels <- List.tl f.continue_labels;
    f.break_labels <- List.tl f.break_labels;
    Frag.label f.frag l_cont;
    gen_expr f cond;
    emit f (Isa.Cmpi (r0, 0l));
    Frag.jump f.frag (Isa.Cjcc Isa.Ne) l_body;
    Frag.label f.frag l_end
  | TSswitch (scrutinee, cases) ->
    (* dispatch: a compare ladder on the scrutinee, then the case bodies
       laid out in order so that fall-through is just falling through *)
    let l_end = fresh_label f.u in
    let labelled =
      List.map (fun c -> (fresh_label f.u, c)) cases
    in
    gen_expr f scrutinee;
    List.iter
      (fun (l, (const, _)) ->
        match const with
        | Some v ->
          emit f (Isa.Cmpi (r0, v));
          Frag.jump f.frag (Isa.Cjcc Isa.Eq) l
        | None -> ())
      labelled;
    (match
       List.find_opt (fun (_, (const, _)) -> const = None) labelled
     with
     | Some (l, _) -> Frag.jump f.frag Isa.Cjmp l
     | None -> Frag.jump f.frag Isa.Cjmp l_end);
    f.break_labels <- l_end :: f.break_labels;
    List.iter
      (fun (l, (_, body)) ->
        Frag.label f.frag l;
        gen_stmts f body)
      labelled;
    f.break_labels <- List.tl f.break_labels;
    Frag.label f.frag l_end
  | TSreturn None -> Frag.jump f.frag Isa.Cjmp f.ret_label
  | TSreturn (Some e) ->
    gen_expr f e;
    Frag.jump f.frag Isa.Cjmp f.ret_label
  | TSbreak -> (
    match f.break_labels with
    | l_end :: _ -> Frag.jump f.frag Isa.Cjmp l_end
    | [] -> invalid_arg "break outside loop or switch")
  | TScontinue -> (
    match f.continue_labels with
    | l_cont :: _ -> Frag.jump f.frag Isa.Cjmp l_cont
    | [] -> invalid_arg "continue outside loop")

let gen_function u frag (tf : tfunc) =
  let slot_offset = Hashtbl.create 8 in
  let frame_size =
    List.fold_left
      (fun off (l : local) ->
        let off = off + l.l_size in
        Hashtbl.replace slot_offset l.l_id (-off);
        off)
      0 tf.tf_locals
  in
  let f =
    { u; frag; slot_offset;
      ret_label = Printf.sprintf ".Lret.%s" tf.tf_name;
      continue_labels = []; break_labels = [] }
  in
  Frag.label frag tf.tf_name;
  emit f (Isa.Push fp);
  emit f (Isa.Mov_rr (fp, sp));
  if frame_size > 0 then emit f (Isa.Addi (sp, Int32.of_int (-frame_size)));
  gen_stmts f tf.tf_body;
  Frag.label frag f.ret_label;
  emit f (Isa.Mov_rr (sp, fp));
  emit f (Isa.Pop fp);
  emit f Isa.Ret

(* --- data emission --- *)

let data_align structs_ignored ty =
  ignore structs_ignored;
  match ty with
  | Ast.Char -> 1
  | Ast.Short -> 2
  | _ -> 4

let gitem_size (g : gitem) =
  match g.gi_init with
  | Gzero n -> n
  | Gbytes b -> Bytes.length b
  | Gwords ws -> 4 * List.length ws

let emit_gitem_into frag (g : gitem) =
  match g.gi_init with
  | Gzero _ -> assert false (* bss handled separately *)
  | Gbytes b -> Frag.bytes frag b
  | Gwords ws ->
    List.iter
      (function
        | Wconst v -> Frag.word frag v
        | Waddr (sym, off) -> Frag.word_reloc frag sym off)
      ws

let is_bss (g : gitem) = match g.gi_init with Gzero _ -> true | _ -> false

(* --- unit emission --- *)

let finish_text_section u name frag named_funcs =
  let img = Frag.assemble frag ~text:true in
  u.sections <-
    Section.make ~name ~kind:Section.Text ~align:4 img.data img.relocs
    :: u.sections;
  (* function symbols with sizes from label positions *)
  let fn_labels =
    List.filter (fun (n, _) -> List.mem_assoc n named_funcs) img.labels
  in
  List.iteri
    (fun i (fname, off) ->
      let next =
        match List.nth_opt fn_labels (i + 1) with
        | Some (_, o) -> o
        | None -> Bytes.length img.data
      in
      let static : bool = List.assoc fname named_funcs in
      u.symbols <-
        Symbol.make
          ~binding:(if static then Symbol.Local else Symbol.Global)
          ~size:(next - off) ~kind:`Func ~name:fname
          (Some { Symbol.section = name; value = off })
        :: u.symbols)
    fn_labels

let compile_unit ~options (tu : tunit) : Objfile.t =
  let u =
    { opts = options; tunit = tu; label_counter = 0;
      strings = Hashtbl.create 16; string_order = []; sections = [];
      symbols = [] }
  in
  (* text *)
  if options.function_sections then
    List.iter
      (fun (tf : tfunc) ->
        let frag = Frag.create () in
        gen_function u frag tf;
        finish_text_section u (".text." ^ tf.tf_name) frag
          [ (tf.tf_name, tf.tf_static) ])
      tu.tu_funcs
  else begin
    match tu.tu_funcs with
    | [] -> ()
    | funcs ->
      let frag = Frag.create () in
      List.iter
        (fun (tf : tfunc) ->
          Frag.align frag 4;
          gen_function u frag tf)
        funcs;
      finish_text_section u ".text" frag
        (List.map (fun (tf : tfunc) -> (tf.tf_name, tf.tf_static)) funcs)
  end;
  (* data and bss *)
  let data_items = List.filter (fun g -> not (is_bss g)) tu.tu_globals in
  let bss_items = List.filter is_bss tu.tu_globals in
  let sym_of (g : gitem) section value =
    Symbol.make
      ~binding:(if g.gi_static then Symbol.Local else Symbol.Global)
      ~size:(gitem_size g) ~kind:`Object ~name:g.gi_name
      (Some { Symbol.section; value })
  in
  if options.function_sections then begin
    List.iter
      (fun g ->
        let name = ".data." ^ g.gi_name in
        let frag = Frag.create () in
        emit_gitem_into frag g;
        let img = Frag.assemble frag ~text:false in
        u.sections <-
          Section.make ~name ~kind:Section.Data
            ~align:(data_align () g.gi_ty) img.data img.relocs
          :: u.sections;
        u.symbols <- sym_of g name 0 :: u.symbols)
      data_items;
    List.iter
      (fun g ->
        let name = ".bss." ^ g.gi_name in
        u.sections <-
          Section.make_bss ~name ~align:(data_align () g.gi_ty)
            (gitem_size g)
          :: u.sections;
        u.symbols <- sym_of g name 0 :: u.symbols)
      bss_items
  end
  else begin
    if data_items <> [] then begin
      let frag = Frag.create () in
      let offsets =
        List.map
          (fun g ->
            Frag.align frag (data_align () g.gi_ty);
            let marker = ".Ld." ^ g.gi_name in
            Frag.label frag marker;
            emit_gitem_into frag g;
            (g, marker))
          data_items
      in
      let img = Frag.assemble frag ~text:false in
      u.sections <-
        Section.make ~name:".data" ~kind:Section.Data ~align:4 img.data
          img.relocs
        :: u.sections;
      List.iter
        (fun (g, marker) ->
          u.symbols <- sym_of g ".data" (List.assoc marker img.labels)
                       :: u.symbols)
        offsets
    end;
    if bss_items <> [] then begin
      let pos = ref 0 in
      let placed =
        List.map
          (fun g ->
            let a = data_align () g.gi_ty in
            pos := (!pos + a - 1) / a * a;
            let here = !pos in
            pos := !pos + gitem_size g;
            (g, here))
          bss_items
      in
      u.sections <-
        Section.make_bss ~name:".bss" ~align:4 !pos :: u.sections;
      List.iter
        (fun (g, off) -> u.symbols <- sym_of g ".bss" off :: u.symbols)
        placed
    end
  end;
  (* string literals *)
  (match List.rev u.string_order with
   | [] -> ()
   | strings ->
     let frag = Frag.create () in
     List.iter
       (fun (sym, contents) ->
         Frag.label frag sym;
         Frag.string frag contents;
         Frag.bytes frag (Bytes.make 1 '\000'))
       strings;
     let img = Frag.assemble frag ~text:false in
     u.sections <-
       Section.make ~name:".rodata.str" ~kind:Section.Rodata ~align:1
         img.data img.relocs
       :: u.sections;
     List.iter
       (fun (sym, contents) ->
         u.symbols <-
           Symbol.make ~binding:Symbol.Local
             ~size:(String.length contents + 1)
             ~kind:`Object ~name:sym
             (Some { Symbol.section = ".rodata.str";
                     value = List.assoc sym img.labels })
           :: u.symbols)
       strings);
  (* ksplice hook sections *)
  let hook_kinds =
    List.sort_uniq compare (List.map fst tu.tu_hooks)
  in
  List.iter
    (fun kind ->
      let frag = Frag.create () in
      List.iter
        (fun (k, fname) -> if k = kind then Frag.word_reloc frag fname 0l)
        tu.tu_hooks;
      let img = Frag.assemble frag ~text:false in
      u.sections <-
        Section.make ~name:(Ast.hook_section kind) ~kind:Section.Note
          ~align:4 img.data img.relocs
        :: u.sections)
    hook_kinds;
  let obj =
    Objfile.make ~unit_name:tu.tu_name ~sections:(List.rev u.sections)
      ~symbols:(List.rev u.symbols)
  in
  (* undefined external references *)
  let undef =
    Objfile.undefined_symbols obj
    |> List.filter (fun n ->
         not (String.length n >= 2 && n.[0] = '.' && n.[1] = 'L'))
    |> List.map (fun n -> Symbol.make ~name:n None)
  in
  { obj with symbols = obj.symbols @ undef }
