open Ast
open Tast

exception Error of string

let err fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

let builtins =
  [
    { b_name = "__putc"; b_code = 0; b_args = 1; b_ret = false };
    { b_name = "__exit"; b_code = 1; b_args = 1; b_ret = false };
    { b_name = "__yield"; b_code = 2; b_args = 0; b_ret = false };
    { b_name = "__gettick"; b_code = 3; b_args = 0; b_ret = true };
    { b_name = "__getuid"; b_code = 4; b_args = 0; b_ret = true };
    { b_name = "__setuid"; b_code = 5; b_args = 1; b_ret = false };
    { b_name = "__sleep"; b_code = 6; b_args = 1; b_ret = false };
    { b_name = "__shadow_attach"; b_code = 8; b_args = 3; b_ret = true };
    { b_name = "__shadow_get"; b_code = 9; b_args = 2; b_ret = true };
    { b_name = "__shadow_detach"; b_code = 10; b_args = 2; b_ret = false };
    { b_name = "__syscall0"; b_code = 0x80; b_args = 1; b_ret = true };
    { b_name = "__syscall1"; b_code = 0x80; b_args = 2; b_ret = true };
    { b_name = "__syscall2"; b_code = 0x80; b_args = 3; b_ret = true };
    { b_name = "__syscall3"; b_code = 0x80; b_args = 4; b_ret = true };
  ]

let find_builtin name = List.find_opt (fun b -> b.b_name = name) builtins

(* --- layout --- *)

let rec align_of structs = function
  | Void -> 1
  | Char -> 1
  | Short -> 2
  | Int | Ptr _ -> 4
  | Array (t, _) -> align_of structs t
  | Struct tag -> (
    match List.assoc_opt tag structs with
    | None -> err "unknown struct %s" tag
    | Some fields ->
      List.fold_left (fun a (t, _) -> max a (align_of structs t)) 1 fields)

let round_up v a = (v + a - 1) / a * a

let rec sizeof structs = function
  | Void -> err "sizeof(void)"
  | Char -> 1
  | Short -> 2
  | Int | Ptr _ -> 4
  | Array (t, n) -> n * sizeof structs t
  | Struct tag -> (
    match List.assoc_opt tag structs with
    | None -> err "unknown struct %s" tag
    | Some fields ->
      let off =
        List.fold_left
          (fun off (t, _) ->
            round_up off (align_of structs t) + sizeof structs t)
          0 fields
      in
      round_up off (align_of structs (Struct tag)))

let field_info structs tag field =
  match List.assoc_opt tag structs with
  | None -> err "unknown struct %s" tag
  | Some fields ->
    let rec walk off = function
      | [] -> err "struct %s has no field %s" tag field
      | (t, f) :: rest ->
        let off = round_up off (align_of structs t) in
        if String.equal f field then (off, t)
        else walk (off + sizeof structs t) rest
    in
    walk 0 fields

let field_offset structs tag field = fst (field_info structs tag field)

(* --- environment --- *)

type fsig = { fs_ret : ty; fs_params : ty list; fs_defined : bool }

type binding =
  | Blocal of int * ty
  | Bparam of int * ty
  | Bstatic of string * ty  (* mangled data symbol *)

type env = {
  unit_name : string;
  structs : (string * (ty * string) list) list;
  funcs : (string, fsig) Hashtbl.t;
  globals : (string, ty) Hashtbl.t;  (* both defined-here and extern *)
  (* per-function state *)
  mutable scopes : (string, binding) Hashtbl.t list;
  mutable locals : local list;  (* reversed *)
  mutable next_local : int;
  mutable loop_depth : int;
  mutable switch_depth : int;
  mutable cur_fname : string;
  mutable cur_ret : ty;
  mutable extra_globals : gitem list;  (* static locals, reversed *)
}

let lookup_var env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some b -> Some b
      | None -> go rest)
  in
  go env.scopes

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let bind env name b =
  match env.scopes with
  | scope :: _ ->
    if Hashtbl.mem scope name then err "duplicate declaration of %s" name;
    Hashtbl.replace scope name b
  | [] -> assert false

(* --- type utilities --- *)

let is_intish = function Char | Short | Int -> true | _ -> false
let is_scalar = function Char | Short | Int | Ptr _ -> true | _ -> false

let decay = function Array (t, _) -> Ptr t | t -> t

let width_of = function
  | Char -> M8
  | Short -> M16
  | Int | Ptr _ -> M32
  | t -> err "cannot access %s as a scalar" (string_of_ty t)

let mk desc ty = { desc; ty }

(* widen/truncate a value to fit a narrow type, keeping registers
   canonical (sign-extended) *)
let narrowed ty (e : texpr) =
  match ty with
  | Char -> mk (Twiden (Wsext8, e)) Int
  | Short -> mk (Twiden (Wsext16, e)) Int
  | _ -> e

(* an lvalue is a frame slot or a memory address *)
type lv =
  | LVlocal of int * ty
  | LVparam of int * ty
  | LVmem of texpr * ty  (* address, pointee type *)

let lv_ty = function
  | LVlocal (_, t) | LVparam (_, t) | LVmem (_, t) -> t

let addr_of_lv = function
  | LVlocal (slot, t) -> mk (Tlocal_addr slot) (Ptr t)
  | LVparam (i, t) -> mk (Tparam_addr i) (Ptr t)
  | LVmem (addr, t) -> { addr with ty = Ptr t }

let add_offset addr off =
  if off = 0 then addr
  else mk (Tbin (Badd, addr, mk (Tconst (Int32.of_int off)) Int)) addr.ty

(* a compiler-generated frame slot, used to evaluate a side-effecting
   lvalue address (or a postfix operand's old value) exactly once *)
let tmp_local env ty =
  let slot = env.next_local in
  env.next_local <- slot + 1;
  env.locals <- { l_id = slot; l_ty = ty; l_size = 4 } :: env.locals;
  slot

(* can re-evaluating this address change observable state or yield a
   different value? loads are pure here (no volatile in the subset) *)
let rec addr_pure (e : texpr) =
  match e.desc with
  | Tconst _ | Tstring _ | Tsym_addr _ | Tlocal_get _ | Tlocal_addr _
  | Tparam_get _ | Tparam_addr _ -> true
  | Tbin (_, a, b) -> addr_pure a && addr_pure b
  | Tun (_, a) | Twiden (_, a) | Tload (_, a) -> addr_pure a
  | Tseq _ | Tlocal_set _ | Tparam_set _ | Tstore _ | Tcall _ | Tbuiltin _
  | Ticall _ -> false

(* [addr] evaluated exactly once: pure addresses pass through, impure
   ones are spilled to a temp slot read back at each use site *)
let cached_addr env (addr : texpr) =
  if addr_pure addr then (addr, None)
  else begin
    let slot = tmp_local env addr.ty in
    (mk (Tlocal_get slot) addr.ty,
     Some (mk (Tlocal_set (slot, addr)) addr.ty))
  end

let seq pre e =
  match pre with None -> e | Some p -> mk (Tseq (p, e)) e.ty

(* --- expression checking --- *)

let rec check_expr env (e : expr) : texpr =
  match e with
  | Eint v -> mk (Tconst v) Int
  | Echar c -> mk (Tconst (Int32.of_int (Char.code c))) Int
  | Estr s -> mk (Tstring s) (Ptr Char)
  | Esizeof t -> mk (Tconst (Int32.of_int (sizeof env.structs t))) Int
  | Eident name -> (
    match lookup_var env name with
    | Some b -> rvalue env (lv_of_binding b)
    | None ->
      if Hashtbl.mem env.globals name then
        rvalue env (LVmem (mk (Tsym_addr name) (Ptr (Hashtbl.find env.globals name)),
                           Hashtbl.find env.globals name))
      else if Hashtbl.mem env.funcs name then mk (Tsym_addr name) Int
      else err "%s: undeclared identifier %s" env.cur_fname name)
  | Ecall (name, args) -> check_call env name args
  | Eicall (callee, args) ->
    let c = check_expr env callee in
    if not (is_scalar (decay c.ty)) then err "indirect call through non-scalar";
    let args = List.map (check_expr env) args in
    mk (Ticall (c, args)) Int
  | Ebin (op, a, b) -> check_binop env op a b
  | Eun (op, a) ->
    let a' = check_expr env a in
    (match op with
     | Uneg | Ubnot ->
       if not (is_intish (decay a'.ty)) then err "arithmetic on non-integer";
       mk (Tun (op, a')) Int
     | Unot ->
       if not (is_scalar (decay a'.ty)) then err "! on non-scalar";
       mk (Tun (op, a')) Int)
  | Ederef e -> rvalue env (lv_deref env e)
  | Eaddr (Eident f)
    when lookup_var env f = None
         && (not (Hashtbl.mem env.globals f))
         && Hashtbl.mem env.funcs f ->
    mk (Tsym_addr f) Int
  | Eaddr e -> addr_of_lv (check_lvalue env e)
  | Eindex (a, i) -> rvalue env (lv_index env a i)
  | Efield (e, f) -> rvalue env (lv_field env e f)
  | Earrow (e, f) -> rvalue env (lv_arrow env e f)
  | Eassign (lhs, rhs) ->
    let lv = check_lvalue env lhs in
    let rhs' = check_expr env rhs in
    let t = lv_ty lv in
    if not (is_scalar t) then err "assignment to non-scalar";
    if not (is_scalar (decay rhs'.ty)) then err "assignment of non-scalar";
    (match lv with
     | LVlocal (slot, _) -> mk (Tlocal_set (slot, narrowed t rhs')) t
     | LVparam (i, _) -> mk (Tparam_set (i, narrowed t rhs')) t
     | LVmem (addr, _) ->
       narrowed t (mk (Tstore (width_of t, addr, rhs')) t))
  | Ecompound (op, lhs, rhs) ->
    let lv = check_lvalue env lhs in
    let rhs' = check_expr env rhs in
    let t = lv_ty lv in
    if not (is_scalar t) then err "assignment to non-scalar";
    if not (is_scalar (decay rhs'.ty)) then err "assignment of non-scalar";
    (match lv with
     | LVlocal (slot, _) ->
       let nv = binop_texpr env op (rvalue env lv) rhs' in
       mk (Tlocal_set (slot, narrowed t nv)) t
     | LVparam (i, _) ->
       let nv = binop_texpr env op (rvalue env lv) rhs' in
       mk (Tparam_set (i, narrowed t nv)) t
     | LVmem (addr, _) ->
       (* the address is computed once and reused for the read-back and
          the store, so side effects in the lvalue fire exactly once *)
       let caddr, pre = cached_addr env addr in
       let old = rvalue env (LVmem (caddr, t)) in
       let nv = binop_texpr env op old rhs' in
       seq pre (narrowed t (mk (Tstore (width_of t, caddr, nv)) t)))
  | Epostop (op, lhs) ->
    let lv = check_lvalue env lhs in
    let t = lv_ty lv in
    if not (is_scalar t) then err "++/-- on non-scalar";
    let lv, pre =
      match lv with
      | LVmem (addr, pt) ->
        let caddr, apre = cached_addr env addr in
        (LVmem (caddr, pt), apre)
      | other -> (other, None)
    in
    (* stash the pre-update value in a temp: it is the expression's
       value, and it must survive the write-back *)
    let old = rvalue env lv in
    let otmp = tmp_local env old.ty in
    let save = mk (Tlocal_set (otmp, old)) old.ty in
    let oldv = mk (Tlocal_get otmp) old.ty in
    let nv = narrowed t (binop_texpr env op oldv (mk (Tconst 1l) Int)) in
    let wrote =
      match lv with
      | LVlocal (slot, _) -> mk (Tlocal_set (slot, nv)) t
      | LVparam (i, _) -> mk (Tparam_set (i, nv)) t
      | LVmem (caddr, _) -> mk (Tstore (width_of t, caddr, nv)) t
    in
    let result = mk (Tlocal_get otmp) old.ty in
    seq pre
      (mk (Tseq (save, mk (Tseq (wrote, result)) result.ty)) result.ty)
  | Ecast (t, e) ->
    let e' = check_expr env e in
    (match t with
     | Void -> mk e'.desc Void
     | Char | Short -> { (narrowed t e') with ty = Int }
     | Int | Ptr _ ->
       if not (is_scalar (decay e'.ty)) then err "cast of non-scalar";
       { e' with ty = t }
     | Array _ | Struct _ -> err "cannot cast to %s" (string_of_ty t))

and lv_of_binding = function
  | Blocal (slot, t) -> LVlocal (slot, t)
  | Bparam (i, t) -> LVparam (i, t)
  | Bstatic (sym, t) -> LVmem (mk (Tsym_addr sym) (Ptr t), t)

and rvalue env lv =
  match lv with
  | LVlocal (slot, (Array (t, _))) -> mk (Tlocal_addr slot) (Ptr t)
  | LVlocal (_, Struct _) -> err "struct value used as scalar"
  | LVlocal (slot, t) -> mk (Tlocal_get slot) t
  | LVparam (_, (Array _ | Struct _)) -> err "aggregate parameter"
  | LVparam (i, t) -> mk (Tparam_get i) t
  | LVmem (addr, Array (t, _)) -> { addr with ty = Ptr t }
  | LVmem (_, Struct tag) -> err "struct %s value used as scalar" tag
  | LVmem (addr, t) ->
    ignore env;
    (match t with
     | Char -> mk (Twiden (Wsext8, mk (Tload (M8, addr)) Int)) Int
     | Short -> mk (Twiden (Wsext16, mk (Tload (M16, addr)) Int)) Int
     | _ -> mk (Tload (M32, addr)) t)

and check_lvalue env (e : expr) : lv =
  match e with
  | Eident name -> (
    match lookup_var env name with
    | Some b -> lv_of_binding b
    | None ->
      (match Hashtbl.find_opt env.globals name with
       | Some t -> LVmem (mk (Tsym_addr name) (Ptr t), t)
       | None -> err "%s: undeclared identifier %s" env.cur_fname name))
  | Ederef e -> lv_deref env e
  | Eindex (a, i) -> lv_index env a i
  | Efield (e, f) -> lv_field env e f
  | Earrow (e, f) -> lv_arrow env e f
  | _ -> err "expression is not an lvalue"

and lv_deref env e =
  let e' = check_expr env e in
  match decay e'.ty with
  | Ptr Void -> err "dereference of void pointer"
  | Ptr t -> LVmem ({ e' with ty = Ptr t }, t)
  | _ -> err "dereference of non-pointer"

and lv_index env a i =
  let a' = check_expr env a in
  let i' = check_expr env i in
  if not (is_intish (decay i'.ty)) then err "array index must be integer";
  match decay a'.ty with
  | Ptr Void -> err "indexing a void pointer"
  | Ptr t ->
    let sz = sizeof env.structs t in
    let scaled =
      if sz = 1 then i'
      else mk (Tbin (Bmul, i', mk (Tconst (Int32.of_int sz)) Int)) Int
    in
    LVmem (mk (Tbin (Badd, { a' with ty = Ptr t }, scaled)) (Ptr t), t)
  | _ -> err "indexing a non-pointer"

and lv_field env e f =
  let lv = check_lvalue env e in
  match lv_ty lv with
  | Struct tag ->
    let off, fty = field_info env.structs tag f in
    LVmem (add_offset (addr_of_lv lv) off, fty)
  | t -> err ". applied to non-struct %s" (string_of_ty t)

and lv_arrow env e f =
  let e' = check_expr env e in
  match decay e'.ty with
  | Ptr (Struct tag) ->
    let off, fty = field_info env.structs tag f in
    LVmem (add_offset { e' with ty = Ptr (Struct tag) } off, fty)
  | t -> err "-> applied to %s" (string_of_ty t)

and check_call env name args =
  match find_builtin name with
  | Some b ->
    if List.length args <> b.b_args then
      err "builtin %s expects %d arguments" name b.b_args;
    let args = List.map (check_expr env) args in
    List.iter
      (fun (a : texpr) ->
        if not (is_scalar (decay a.ty)) then
          err "non-scalar argument to %s" name)
      args;
    mk (Tbuiltin (b, args)) (if b.b_ret then Int else Void)
  | None -> (
    match Hashtbl.find_opt env.funcs name with
    | Some fs ->
      if List.length args <> List.length fs.fs_params then
        err "%s expects %d arguments, got %d" name
          (List.length fs.fs_params) (List.length args);
      let args =
        List.map2
          (fun pty a ->
            let a' = check_expr env a in
            if not (is_scalar (decay a'.ty)) then
              err "non-scalar argument to %s" name;
            (* implicit conversion to the parameter type happens in the
               caller: this is the §3.1 prototype-change ripple *)
            narrowed pty a')
          fs.fs_params args
      in
      let call = mk (Tcall (name, args)) fs.fs_ret in
      (match fs.fs_ret with
       | Char | Short -> narrowed fs.fs_ret call
       | _ -> call)
    | None -> (
      (* maybe a variable holding a function address: indirect call *)
      match lookup_var env name, Hashtbl.find_opt env.globals name with
      | Some _, _ | None, Some _ ->
        check_expr env (Eicall (Eident name, args))
      | None, None -> err "call to undeclared function %s" name))

and check_binop env op a b =
  let a' = check_expr env a and b' = check_expr env b in
  binop_texpr env op a' b'

(* apply [op] to two already-checked operands; compound assignment and
   the ++/-- forms reuse this on a cached lvalue value *)
and binop_texpr env op a' b' =
  match op with
  | Bland | Blor ->
    if not (is_scalar (decay a'.ty) && is_scalar (decay b'.ty)) then
      err "logical operator on non-scalar";
    mk (Tbin (op, a', b')) Int
  | Beq | Bne | Blt | Ble | Bgt | Bge ->
    if not (is_scalar (decay a'.ty) && is_scalar (decay b'.ty)) then
      err "comparison of non-scalar";
    mk (Tbin (op, a', b')) Int
  | Badd | Bsub ->
    let ta = decay a'.ty and tb = decay b'.ty in
    (match ta, tb, op with
     | Ptr t, i, _ when is_intish i ->
       let sz = sizeof env.structs t in
       let scaled =
         if sz = 1 then b'
         else mk (Tbin (Bmul, b', mk (Tconst (Int32.of_int sz)) Int)) Int
       in
       mk (Tbin (op, { a' with ty = Ptr t }, scaled)) (Ptr t)
     | i, Ptr t, Badd when is_intish i ->
       let sz = sizeof env.structs t in
       let scaled =
         if sz = 1 then a'
         else mk (Tbin (Bmul, a', mk (Tconst (Int32.of_int sz)) Int)) Int
       in
       mk (Tbin (Badd, { b' with ty = Ptr t }, scaled)) (Ptr t)
     | Ptr t, Ptr _, Bsub ->
       let sz = sizeof env.structs t in
       let diff = mk (Tbin (Bsub, a', b')) Int in
       if sz = 1 then diff
       else mk (Tbin (Bdiv, diff, mk (Tconst (Int32.of_int sz)) Int)) Int
     | ia, ib, _ when is_intish ia && is_intish ib ->
       mk (Tbin (op, a', b')) Int
     | _ -> err "invalid operands to +/-")
  | Bmul | Bdiv | Bmod | Band | Bor | Bxor | Bshl | Bshr ->
    if not (is_intish (decay a'.ty) && is_intish (decay b'.ty)) then
      err "arithmetic on non-integer";
    mk (Tbin (op, a', b')) Int

(* A discarded postfix update is the matching compound assignment: the
   old-value temp only exists to produce the result, so statement-position
   [i++] (loop steps, expression statements) stays a plain read-op-write. *)
let check_expr_discard env (e : expr) : texpr =
  match e with
  | Epostop (op, lhs) -> check_expr env (Ecompound (op, lhs, Eint 1l))
  | e -> check_expr env e

(* --- constant expressions (global initialisers) --- *)

let rec const_value env (e : expr) : gword =
  match e with
  | Eint v -> Wconst v
  | Echar c -> Wconst (Int32.of_int (Char.code c))
  | Esizeof t -> Wconst (Int32.of_int (sizeof env.structs t))
  | Eun (Uneg, e) -> (
    match const_value env e with
    | Wconst v -> Wconst (Int32.neg v)
    | Waddr _ -> err "cannot negate an address constant")
  | Ebin (op, a, b) -> (
    match const_value env a, const_value env b with
    | Wconst x, Wconst y ->
      let f =
        match op with
        | Badd -> Int32.add
        | Bsub -> Int32.sub
        | Bmul -> Int32.mul
        | Bor -> Int32.logor
        | Band -> Int32.logand
        | Bxor -> Int32.logxor
        | Bshl -> fun a b -> Int32.shift_left a (Int32.to_int b land 31)
        | Bshr ->
          fun a b -> Int32.shift_right_logical a (Int32.to_int b land 31)
        | _ -> err "operator not allowed in constant expression"
      in
      Wconst (f x y)
    | Waddr (s, off), Wconst d when op = Badd ->
      Waddr (s, Int32.add off d)
    | _ -> err "address arithmetic not allowed in constant expression")
  | Eident name | Eaddr (Eident name) ->
    if Hashtbl.mem env.funcs name || Hashtbl.mem env.globals name then
      Waddr (name, 0l)
    else err "unknown symbol %s in constant expression" name
  | _ -> err "not a constant expression"

let global_init env (g : global) : ginit =
  let scalar_bytes t v =
    match t, v with
    | Char, Wconst c ->
      Gbytes (Bytes.make 1 (Char.chr (Int32.to_int c land 0xff)))
    | Short, Wconst c ->
      let b = Bytes.create 2 in
      Bytes.set_uint16_le b 0 (Int32.to_int c land 0xffff);
      Gbytes b
    | (Int | Ptr _), w -> Gwords [ w ]
    | _ -> err "bad initializer for %s" g.g_name
  in
  match g.g_init with
  | None -> Gzero (sizeof env.structs g.g_ty)
  | Some (Init_scalar e) -> scalar_bytes g.g_ty (const_value env e)
  | Some (Init_string s) -> (
    match g.g_ty with
    | Array (Char, n) ->
      if String.length s + 1 > n then err "%s: string too long" g.g_name;
      let b = Bytes.make n '\000' in
      Bytes.blit_string s 0 b 0 (String.length s);
      Gbytes b
    | _ -> err "%s: string initializer requires char array" g.g_name)
  | Some (Init_list items) -> (
    match g.g_ty with
    | Array ((Int | Ptr _), n) ->
      if List.length items > n then err "%s: too many initializers" g.g_name;
      let words = List.map (const_value env) items in
      let pad = List.init (n - List.length items) (fun _ -> Wconst 0l) in
      Gwords (words @ pad)
    | Array (Char, n) ->
      if List.length items > n then err "%s: too many initializers" g.g_name;
      let b = Bytes.make n '\000' in
      List.iteri
        (fun i e ->
          match const_value env e with
          | Wconst v -> Bytes.set b i (Char.chr (Int32.to_int v land 0xff))
          | Waddr _ -> err "%s: address in char array" g.g_name)
        items;
      Gbytes b
    | _ -> err "%s: initializer list requires array type" g.g_name)

(* --- statements --- *)

let rec check_stmts env stmts = List.concat_map (check_stmt env) stmts

and check_stmt env (s : stmt) : tstmt list =
  match s with
  | Sexpr e -> [ TSexpr (check_expr_discard env e) ]
  | Sblock stmts ->
    push_scope env;
    let r = check_stmts env stmts in
    pop_scope env;
    r
  | Sif (cond, then_, else_) ->
    let c = check_expr env cond in
    if not (is_scalar (decay c.ty)) then err "if condition must be scalar";
    push_scope env;
    let t = check_stmts env then_ in
    pop_scope env;
    push_scope env;
    let e = check_stmts env else_ in
    pop_scope env;
    [ TSif (c, t, e) ]
  | Swhile (cond, body) ->
    let c = check_expr env cond in
    if not (is_scalar (decay c.ty)) then err "while condition must be scalar";
    env.loop_depth <- env.loop_depth + 1;
    push_scope env;
    let b = check_stmts env body in
    pop_scope env;
    env.loop_depth <- env.loop_depth - 1;
    [ TSloop (Some c, None, b) ]
  | Sdowhile (body, cond) ->
    env.loop_depth <- env.loop_depth + 1;
    push_scope env;
    let b = check_stmts env body in
    pop_scope env;
    env.loop_depth <- env.loop_depth - 1;
    let c = check_expr env cond in
    if not (is_scalar (decay c.ty)) then
      err "do-while condition must be scalar";
    [ TSdowhile (b, c) ]
  | Sswitch (scrutinee, cases) ->
    let sc = check_expr env scrutinee in
    if not (is_intish (decay sc.ty)) then
      err "switch scrutinee must be an integer";
    let seen = ref [] in
    let defaults = ref 0 in
    env.switch_depth <- env.switch_depth + 1;
    let cases' =
      List.map
        (fun (c : switch_case) ->
          let const =
            match c.sc_const with
            | None ->
              incr defaults;
              if !defaults > 1 then err "%s: duplicate default" env.cur_fname;
              None
            | Some e -> (
              match const_value env e with
              | Wconst v ->
                if List.mem v !seen then
                  err "%s: duplicate case %ld" env.cur_fname v;
                seen := v :: !seen;
                Some v
              | Waddr _ -> err "case label must be an integer constant")
          in
          push_scope env;
          let body = check_stmts env c.sc_body in
          pop_scope env;
          (const, body))
        cases
    in
    env.switch_depth <- env.switch_depth - 1;
    [ TSswitch (sc, cases') ]
  | Sfor (init, cond, step, body) ->
    let init' = Option.map (check_expr_discard env) init in
    let cond' = Option.map (check_expr env) cond in
    let step' = Option.map (check_expr_discard env) step in
    (match cond' with
     | Some c when not (is_scalar (decay c.ty)) ->
       err "for condition must be scalar"
     | _ -> ());
    env.loop_depth <- env.loop_depth + 1;
    push_scope env;
    let b = check_stmts env body in
    pop_scope env;
    env.loop_depth <- env.loop_depth - 1;
    let loop = TSloop (cond', step', b) in
    (match init' with None -> [ loop ] | Some i -> [ TSexpr i; loop ])
  | Sreturn None ->
    if env.cur_ret <> Void then err "%s: return without value" env.cur_fname;
    [ TSreturn None ]
  | Sreturn (Some e) ->
    if env.cur_ret = Void then err "%s: void return with value" env.cur_fname;
    let e' = check_expr env e in
    if not (is_scalar (decay e'.ty)) then err "return of non-scalar";
    [ TSreturn (Some (narrowed env.cur_ret e')) ]
  | Sbreak ->
    if env.loop_depth = 0 && env.switch_depth = 0 then
      err "%s: break outside loop or switch" env.cur_fname;
    [ TSbreak ]
  | Scontinue ->
    if env.loop_depth = 0 then err "%s: continue outside loop" env.cur_fname;
    [ TScontinue ]
  | Sdecl d when d.d_static ->
    let sym = env.cur_fname ^ "." ^ d.d_name in
    let init =
      match d.d_init with
      | None -> Gzero (sizeof env.structs d.d_ty)
      | Some e ->
        global_init env
          { g_static = true; g_extern = false; g_ty = d.d_ty;
            g_name = sym; g_init = Some (Init_scalar e) }
    in
    env.extra_globals <-
      { gi_name = sym; gi_static = true; gi_ty = d.d_ty; gi_init = init }
      :: env.extra_globals;
    bind env d.d_name (Bstatic (sym, d.d_ty));
    []
  | Sdecl d ->
    let size = round_up (max 4 (sizeof env.structs d.d_ty)) 4 in
    let slot = env.next_local in
    env.next_local <- slot + 1;
    env.locals <- { l_id = slot; l_ty = d.d_ty; l_size = size } :: env.locals;
    bind env d.d_name (Blocal (slot, d.d_ty));
    (match d.d_init with
     | None -> []
     | Some e ->
       if not (is_scalar d.d_ty) then err "%s: aggregate initializer" d.d_name;
       let e' = check_expr env e in
       [ TSexpr (mk (Tlocal_set (slot, narrowed d.d_ty e')) d.d_ty) ])

(* --- top level --- *)

let check ~unit_name (prog : program) : tunit =
  (* pass 1: collect structs, function signatures, globals *)
  let structs = ref [] in
  let funcs : (string, fsig) Hashtbl.t = Hashtbl.create 32 in
  let globals : (string, ty) Hashtbl.t = Hashtbl.create 32 in
  let defined_globals = ref [] in
  List.iter
    (function
      | Tstruct s ->
        if List.mem_assoc s.s_name !structs then
          err "duplicate struct %s" s.s_name;
        structs := (s.s_name, s.s_fields) :: !structs
      | Tfunc f ->
        let fs =
          { fs_ret = f.f_ret; fs_params = List.map fst f.f_params;
            fs_defined = Option.is_some f.f_body }
        in
        (match Hashtbl.find_opt funcs f.f_name with
         | Some prev ->
           if prev.fs_ret <> fs.fs_ret || prev.fs_params <> fs.fs_params then
             err "conflicting declarations of %s" f.f_name;
           if prev.fs_defined && fs.fs_defined then
             err "duplicate definition of %s" f.f_name;
           if fs.fs_defined then Hashtbl.replace funcs f.f_name fs
         | None -> Hashtbl.replace funcs f.f_name fs)
      | Tglobal g ->
        (match Hashtbl.find_opt globals g.g_name with
         | Some t when t <> g.g_ty ->
           err "conflicting declarations of %s" g.g_name
         | _ -> ());
        Hashtbl.replace globals g.g_name g.g_ty;
        if not g.g_extern then begin
          if List.mem g.g_name !defined_globals then
            err "duplicate definition of %s" g.g_name;
          defined_globals := g.g_name :: !defined_globals
        end
      | Thook _ -> ())
    prog;
  let env =
    { unit_name; structs = !structs; funcs; globals; scopes = [];
      locals = []; next_local = 0; loop_depth = 0; switch_depth = 0;
      cur_fname = "";
      cur_ret = Void; extra_globals = [] }
  in
  (* pass 2: check bodies, build items *)
  let tfuncs = ref [] in
  let gitems = ref [] in
  let hooks = ref [] in
  List.iter
    (function
      | Tstruct _ -> ()
      | Tglobal g when g.g_extern -> ()
      | Tglobal g ->
        (match g.g_ty with
         | Void -> err "%s: void variable" g.g_name
         | _ -> ());
        gitems :=
          { gi_name = g.g_name; gi_static = g.g_static; gi_ty = g.g_ty;
            gi_init = global_init env g }
          :: !gitems
      | Tfunc { f_body = None; _ } -> ()
      | Tfunc f ->
        let body = Option.get f.f_body in
        env.scopes <- [ Hashtbl.create 8 ];
        env.locals <- [];
        env.next_local <- 0;
        env.loop_depth <- 0;
        env.switch_depth <- 0;
        env.cur_fname <- f.f_name;
        env.cur_ret <- f.f_ret;
        List.iteri
          (fun i (t, name) ->
            (match t with
             | Array _ | Struct _ | Void -> err "%s: bad parameter type" name
             | _ -> ());
            bind env name (Bparam (i, t)))
          f.f_params;
        let tbody = check_stmts env body in
        tfuncs :=
          { tf_name = f.f_name; tf_static = f.f_static;
            tf_inline = f.f_inline; tf_ret = f.f_ret;
            tf_params = f.f_params; tf_locals = List.rev env.locals;
            tf_body = tbody }
          :: !tfuncs;
        env.scopes <- []
      | Thook (k, fname) ->
        (match Hashtbl.find_opt funcs fname with
         | Some { fs_defined = true; _ } -> hooks := (k, fname) :: !hooks
         | _ -> err "hook %s references undefined function" fname))
    prog;
  let defined_funcs =
    List.rev_map (fun (f : tfunc) -> f.tf_name) !tfuncs
  in
  {
    tu_name = unit_name;
    tu_funcs = List.rev !tfuncs;
    tu_globals = List.rev !gitems @ List.rev env.extra_globals;
    tu_hooks = List.rev !hooks;
    tu_defined_funcs = defined_funcs;
  }
