open Ast

exception Error of { line : int; msg : string }

type state = {
  toks : Lexer.t array;
  mutable pos : int;
}

let err st fmt =
  let line =
    if st.pos < Array.length st.toks then st.toks.(st.pos).line else 0
  in
  Format.kasprintf (fun msg -> raise (Error { line; msg })) fmt

let peek st = st.toks.(st.pos).tok
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).tok
  else Lexer.EOF

let advance st = st.pos <- st.pos + 1

let eat_punct st p =
  match peek st with
  | Lexer.PUNCT q when String.equal p q -> advance st
  | t ->
    err st "expected %S, got %s" p
      (match t with
       | Lexer.IDENT s -> Printf.sprintf "identifier %S" s
       | Lexer.KW s -> Printf.sprintf "keyword %S" s
       | Lexer.PUNCT s -> Printf.sprintf "%S" s
       | Lexer.INT v -> Printf.sprintf "integer %ld" v
       | Lexer.CHARLIT c -> Printf.sprintf "char %C" c
       | Lexer.STRING s -> Printf.sprintf "string %S" s
       | Lexer.EOF -> "end of file")

let accept_punct st p =
  match peek st with
  | Lexer.PUNCT q when String.equal p q ->
    advance st;
    true
  | _ -> false

let accept_kw st k =
  match peek st with
  | Lexer.KW q when String.equal k q ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | _ -> err st "expected identifier"

(* --- types --- *)

let is_type_start st =
  match peek st with
  | Lexer.KW ("void" | "char" | "short" | "int" | "struct") -> true
  | _ -> false

let parse_base_type st =
  match peek st with
  | Lexer.KW "void" -> advance st; Void
  | Lexer.KW "char" -> advance st; Char
  | Lexer.KW "short" -> advance st; Short
  | Lexer.KW "int" -> advance st; Int
  | Lexer.KW "struct" ->
    advance st;
    Struct (expect_ident st)
  | _ -> err st "expected type"

let parse_type st =
  let t = ref (parse_base_type st) in
  while accept_punct st "*" do
    t := Ptr !t
  done;
  !t

(* --- expressions --- *)

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_lor st in
  if accept_punct st "=" then
    let rhs = parse_assign st in
    Eassign (lhs, rhs)
  else
    let compound =
      match peek st with
      | Lexer.PUNCT "+=" -> Some Badd
      | Lexer.PUNCT "-=" -> Some Bsub
      | Lexer.PUNCT "*=" -> Some Bmul
      | Lexer.PUNCT "/=" -> Some Bdiv
      | Lexer.PUNCT "%=" -> Some Bmod
      | Lexer.PUNCT "&=" -> Some Band
      | Lexer.PUNCT "|=" -> Some Bor
      | Lexer.PUNCT "^=" -> Some Bxor
      | Lexer.PUNCT "<<=" -> Some Bshl
      | Lexer.PUNCT ">>=" -> Some Bshr
      | _ -> None
    in
    match compound with
    | None -> lhs
    | Some op ->
      advance st;
      let rhs = parse_assign st in
      Ecompound (op, lhs, rhs)

and parse_binlevel st ops next =
  let lhs = ref (next st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PUNCT p when List.mem_assoc p ops ->
      advance st;
      let rhs = next st in
      lhs := Ebin (List.assoc p ops, !lhs, rhs)
    | _ -> continue := false
  done;
  !lhs

and parse_lor st = parse_binlevel st [ ("||", Blor) ] parse_land
and parse_land st = parse_binlevel st [ ("&&", Bland) ] parse_bitor
and parse_bitor st = parse_binlevel st [ ("|", Bor) ] parse_bitxor
and parse_bitxor st = parse_binlevel st [ ("^", Bxor) ] parse_bitand
and parse_bitand st = parse_binlevel st [ ("&", Band) ] parse_equality

and parse_equality st =
  parse_binlevel st [ ("==", Beq); ("!=", Bne) ] parse_relational

and parse_relational st =
  parse_binlevel st
    [ ("<", Blt); ("<=", Ble); (">", Bgt); (">=", Bge) ]
    parse_shift

and parse_shift st = parse_binlevel st [ ("<<", Bshl); (">>", Bshr) ] parse_add
and parse_add st = parse_binlevel st [ ("+", Badd); ("-", Bsub) ] parse_mul

and parse_mul st =
  parse_binlevel st [ ("*", Bmul); ("/", Bdiv); ("%", Bmod) ] parse_unary

and parse_unary st =
  match peek st with
  | Lexer.PUNCT "++" ->
    advance st;
    let e = parse_unary st in
    Ecompound (Badd, e, Eint 1l)
  | Lexer.PUNCT "--" ->
    advance st;
    let e = parse_unary st in
    Ecompound (Bsub, e, Eint 1l)
  | Lexer.PUNCT "-" ->
    advance st;
    Eun (Uneg, parse_unary st)
  | Lexer.PUNCT "!" ->
    advance st;
    Eun (Unot, parse_unary st)
  | Lexer.PUNCT "~" ->
    advance st;
    Eun (Ubnot, parse_unary st)
  | Lexer.PUNCT "*" ->
    advance st;
    Ederef (parse_unary st)
  | Lexer.PUNCT "&" ->
    advance st;
    Eaddr (parse_unary st)
  | Lexer.KW "sizeof" ->
    advance st;
    eat_punct st "(";
    let t = parse_type st in
    eat_punct st ")";
    Esizeof t
  | Lexer.PUNCT "(" when (match peek2 st with
                          | Lexer.KW ("void" | "char" | "short" | "int"
                                     | "struct") -> true
                          | _ -> false) ->
    advance st;
    let t = parse_type st in
    eat_punct st ")";
    Ecast (t, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PUNCT "(" ->
      advance st;
      let args = parse_args st in
      (e :=
         match !e with
         | Eident f -> Ecall (f, args)
         | other -> Eicall (other, args))
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      eat_punct st "]";
      e := Eindex (!e, idx)
    | Lexer.PUNCT "++" ->
      advance st;
      e := Epostop (Badd, !e)
    | Lexer.PUNCT "--" ->
      advance st;
      e := Epostop (Bsub, !e)
    | Lexer.PUNCT "." ->
      advance st;
      e := Efield (!e, expect_ident st)
    | Lexer.PUNCT "->" ->
      advance st;
      e := Earrow (!e, expect_ident st)
    | _ -> continue := false
  done;
  !e

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let args = ref [ parse_expr st ] in
    while accept_punct st "," do
      args := parse_expr st :: !args
    done;
    eat_punct st ")";
    List.rev !args
  end

and parse_primary st =
  match peek st with
  | Lexer.INT v ->
    advance st;
    Eint v
  | Lexer.CHARLIT c ->
    advance st;
    Echar c
  | Lexer.STRING s ->
    advance st;
    Estr s
  | Lexer.IDENT s ->
    advance st;
    Eident s
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    eat_punct st ")";
    e
  | _ -> err st "expected expression"

(* --- statements --- *)

let rec parse_stmt st =
  match peek st with
  | Lexer.PUNCT "{" -> Sblock (parse_block st)
  | Lexer.PUNCT ";" ->
    advance st;
    Sblock []
  | Lexer.KW "if" ->
    advance st;
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    let then_ = parse_stmt_as_list st in
    let else_ = if accept_kw st "else" then parse_stmt_as_list st else [] in
    Sif (cond, then_, else_)
  | Lexer.KW "while" ->
    advance st;
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    Swhile (cond, parse_stmt_as_list st)
  | Lexer.KW "do" ->
    advance st;
    let body = parse_stmt_as_list st in
    (match peek st with
     | Lexer.KW "while" -> advance st
     | _ -> err st "expected while after do body");
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    eat_punct st ";";
    Sdowhile (body, cond)
  | Lexer.KW "switch" ->
    advance st;
    eat_punct st "(";
    let scrutinee = parse_expr st in
    eat_punct st ")";
    eat_punct st "{";
    let cases = ref [] in
    while not (accept_punct st "}") do
      let const =
        match peek st with
        | Lexer.KW "case" ->
          advance st;
          let c = parse_expr st in
          eat_punct st ":";
          Some c
        | Lexer.KW "default" ->
          advance st;
          eat_punct st ":";
          None
        | _ -> err st "expected case or default"
      in
      let body = ref [] in
      let stop () =
        match peek st with
        | Lexer.KW ("case" | "default") | Lexer.PUNCT "}" -> true
        | _ -> false
      in
      while not (stop ()) do
        body := parse_stmt st :: !body
      done;
      cases := { sc_const = const; sc_body = List.rev !body } :: !cases
    done;
    Sswitch (scrutinee, List.rev !cases)
  | Lexer.KW "for" ->
    advance st;
    eat_punct st "(";
    let init =
      if accept_punct st ";" then None
      else begin
        let e = parse_expr st in
        eat_punct st ";";
        Some e
      end
    in
    let cond =
      if accept_punct st ";" then None
      else begin
        let e = parse_expr st in
        eat_punct st ";";
        Some e
      end
    in
    let step =
      if accept_punct st ")" then None
      else begin
        let e = parse_expr st in
        eat_punct st ")";
        Some e
      end
    in
    Sfor (init, cond, step, parse_stmt_as_list st)
  | Lexer.KW "return" ->
    advance st;
    if accept_punct st ";" then Sreturn None
    else begin
      let e = parse_expr st in
      eat_punct st ";";
      Sreturn (Some e)
    end
  | Lexer.KW "break" ->
    advance st;
    eat_punct st ";";
    Sbreak
  | Lexer.KW "continue" ->
    advance st;
    eat_punct st ";";
    Scontinue
  | Lexer.KW "static" ->
    advance st;
    let d = parse_local_decl st ~static:true in
    Sdecl d
  | _ when is_type_start st ->
    let d = parse_local_decl st ~static:false in
    Sdecl d
  | _ ->
    let e = parse_expr st in
    eat_punct st ";";
    Sexpr e

and parse_stmt_as_list st =
  match parse_stmt st with Sblock l -> l | s -> [ s ]

and parse_block st =
  eat_punct st "{";
  let stmts = ref [] in
  while not (accept_punct st "}") do
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

and parse_local_decl st ~static =
  let ty = parse_type st in
  let name = expect_ident st in
  let ty =
    if accept_punct st "[" then begin
      let n =
        match peek st with
        | Lexer.INT v ->
          advance st;
          Int32.to_int v
        | _ -> err st "expected array size"
      in
      eat_punct st "]";
      Array (ty, n)
    end
    else ty
  in
  let init =
    if accept_punct st "=" then Some (parse_expr st) else None
  in
  eat_punct st ";";
  { d_static = static; d_ty = ty; d_name = name; d_init = init }

(* --- top level --- *)

let parse_initializer st =
  if accept_punct st "{" then begin
    let items = ref [ parse_expr st ] in
    while accept_punct st "," do
      items := parse_expr st :: !items
    done;
    eat_punct st "}";
    Init_list (List.rev !items)
  end
  else
    match peek st with
    | Lexer.STRING s ->
      advance st;
      Init_string s
    | _ -> Init_scalar (parse_expr st)

let parse_params st =
  eat_punct st "(";
  if accept_punct st ")" then []
  else if (match peek st with Lexer.KW "void" -> peek2 st = Lexer.PUNCT ")" | _ -> false)
  then begin
    advance st;
    eat_punct st ")";
    []
  end
  else begin
    let param () =
      let ty = parse_type st in
      let name =
        match peek st with
        | Lexer.IDENT s ->
          advance st;
          s
        | _ -> err st "expected parameter name"
      in
      (ty, name)
    in
    let ps = ref [ param () ] in
    while accept_punct st "," do
      ps := param () :: !ps
    done;
    eat_punct st ")";
    List.rev !ps
  end

let parse_topdecl st =
  match peek st with
  | Lexer.KW ("ksplice_apply" | "ksplice_pre_apply" | "ksplice_post_apply"
             | "ksplice_reverse" | "ksplice_pre_reverse"
             | "ksplice_post_reverse" | "ksplice_shadow_ctor"
             | "ksplice_shadow_dtor" as kw) ->
    advance st;
    eat_punct st "(";
    let f = expect_ident st in
    eat_punct st ")";
    eat_punct st ";";
    (match Ast.hook_of_keyword kw with
     | Some k -> Thook (k, f)
     | None -> assert false)
  | Lexer.KW "struct" when peek2 st <> Lexer.EOF
                           && (match st.toks.(st.pos + 2).tok with
                               | Lexer.PUNCT "{" -> true
                               | _ -> false) ->
    advance st;
    let name = expect_ident st in
    eat_punct st "{";
    let fields = ref [] in
    while not (accept_punct st "}") do
      let ty = parse_type st in
      let fname = expect_ident st in
      eat_punct st ";";
      fields := (ty, fname) :: !fields
    done;
    eat_punct st ";";
    Tstruct { s_name = name; s_fields = List.rev !fields }
  | _ ->
    let static = ref false and inline = ref false and extern = ref false in
    let quals = ref true in
    while !quals do
      if accept_kw st "static" then static := true
      else if accept_kw st "inline" then inline := true
      else if accept_kw st "extern" then extern := true
      else quals := false
    done;
    let ty = parse_type st in
    let name = expect_ident st in
    if (match peek st with Lexer.PUNCT "(" -> true | _ -> false) then begin
      let params = parse_params st in
      if accept_punct st ";" then
        Tfunc
          { f_static = !static; f_inline = !inline; f_ret = ty; f_name = name;
            f_params = params; f_body = None }
      else
        Tfunc
          { f_static = !static; f_inline = !inline; f_ret = ty; f_name = name;
            f_params = params; f_body = Some (parse_block st) }
    end
    else begin
      let ty =
        if accept_punct st "[" then begin
          let n =
            match peek st with
            | Lexer.INT v ->
              advance st;
              Int32.to_int v
            | _ -> err st "expected array size"
          in
          eat_punct st "]";
          Array (ty, n)
        end
        else ty
      in
      let init =
        if accept_punct st "=" then Some (parse_initializer st) else None
      in
      eat_punct st ";";
      if !extern && Option.is_some init then
        err st "extern declaration cannot have an initializer"
      else
        Tglobal
          { g_static = !static; g_extern = !extern; g_ty = ty; g_name = name;
            g_init = init }
    end

let parse src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let decls = ref [] in
  while peek st <> Lexer.EOF do
    decls := parse_topdecl st :: !decls
  done;
  List.rev !decls
