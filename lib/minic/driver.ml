type options = {
  codegen : Codegen.options;
  inline_enabled : bool;
  auto_inline_max : int;
  explicit_inline_max : int;
}

let run_build =
  { codegen = Codegen.run_options; inline_enabled = true; auto_inline_max = 3;
    explicit_inline_max = 12 }

let pre_build = { run_build with codegen = Codegen.pre_options }

type compiled = {
  obj : Objfile.t;
  inline_decisions : Inline.decision list;
}

type error =
  | Parse_error of { unit_name : string; line : int; msg : string }
  | Type_error of { unit_name : string; msg : string }

let pp_error ppf = function
  | Parse_error { unit_name; line; msg } ->
    Format.fprintf ppf "%s:%d: %s" unit_name line msg
  | Type_error { unit_name; msg } -> Format.fprintf ppf "%s: %s" unit_name msg

let compile ~options ~unit_name src =
  match
    match Parser.parse src with
    | ast -> Ok ast
    | exception Lexer.Error { line; msg } ->
      Error (Parse_error { unit_name; line; msg })
    | exception Parser.Error { line; msg } ->
      Error (Parse_error { unit_name; line; msg })
  with
  | Error e -> Error e
  | Ok ast -> (
    let inlined =
      if options.inline_enabled then
        Inline.run ~auto_max:options.auto_inline_max
          ~explicit_max:options.explicit_inline_max ast
      else { Inline.program = ast; decisions = [] }
    in
    match Typecheck.check ~unit_name inlined.program with
    | exception Typecheck.Error msg -> Error (Type_error { unit_name; msg })
    | tunit ->
      let obj = Codegen.compile_unit ~options:options.codegen tunit in
      Ok { obj; inline_decisions = inlined.decisions })

exception Error of string

let compile_exn ~options ~unit_name src =
  match compile ~options ~unit_name src with
  | Ok c -> c
  | Error e -> raise (Error (Format.asprintf "%a" pp_error e))
