open Ast

type decision = {
  caller : string;
  callee : string;
}

type result = {
  program : Ast.program;
  decisions : decision list;
}

(* --- eligibility --- *)

let rec stmt_weight = function
  | Sexpr _ | Sreturn _ | Sbreak | Scontinue | Sdecl _ -> 1
  | Sif (_, a, b) -> 1 + stmts_weight a + stmts_weight b
  | Swhile (_, b) -> 1 + stmts_weight b
  | Sdowhile (b, _) -> 1 + stmts_weight b
  | Sfor (_, _, _, b) -> 1 + stmts_weight b
  | Sswitch (_, cases) ->
    1 + List.fold_left (fun a c -> a + stmts_weight c.sc_body) 0 cases
  | Sblock b -> stmts_weight b

and stmts_weight l = List.fold_left (fun a s -> a + stmt_weight s) 0 l

let rec has_return_stmt s =
  match s with
  | Sreturn _ -> true
  | Sif (_, a, b) -> List.exists has_return_stmt (a @ b)
  | Swhile (_, b) | Sdowhile (b, _) | Sfor (_, _, _, b) | Sblock b ->
    List.exists has_return_stmt b
  | Sswitch (_, cases) ->
    List.exists (fun c -> List.exists has_return_stmt c.sc_body) cases
  | _ -> false

let rec has_static_decl s =
  match s with
  | Sdecl d -> d.d_static
  | Sif (_, a, b) -> List.exists has_static_decl (a @ b)
  | Swhile (_, b) | Sdowhile (b, _) | Sfor (_, _, _, b) | Sblock b ->
    List.exists has_static_decl b
  | Sswitch (_, cases) ->
    List.exists (fun c -> List.exists has_static_decl c.sc_body) cases
  | _ -> false

let rec expr_calls e acc =
  match e with
  | Ecall (f, args) -> f :: List.fold_right expr_calls args acc
  | Eicall (c, args) -> expr_calls c (List.fold_right expr_calls args acc)
  | Ebin (_, a, b) -> expr_calls a (expr_calls b acc)
  | Eun (_, a) | Ederef a | Eaddr a | Ecast (_, a) -> expr_calls a acc
  | Eindex (a, b) | Eassign (a, b) | Ecompound (_, a, b) ->
    expr_calls a (expr_calls b acc)
  | Efield (a, _) | Earrow (a, _) | Epostop (_, a) -> expr_calls a acc
  | Eint _ | Echar _ | Estr _ | Eident _ | Esizeof _ -> acc

let rec stmt_calls s acc =
  match s with
  | Sexpr e -> expr_calls e acc
  | Sif (c, a, b) ->
    expr_calls c (List.fold_right stmt_calls a (List.fold_right stmt_calls b acc))
  | Swhile (c, b) -> expr_calls c (List.fold_right stmt_calls b acc)
  | Sdowhile (b, c) -> expr_calls c (List.fold_right stmt_calls b acc)
  | Sswitch (c, cases) ->
    expr_calls c
      (List.fold_right
         (fun case acc -> List.fold_right stmt_calls case.sc_body acc)
         cases acc)
  | Sfor (i, c, st, b) ->
    let acc = List.fold_right stmt_calls b acc in
    let acc = Option.fold ~none:acc ~some:(fun e -> expr_calls e acc) i in
    let acc = Option.fold ~none:acc ~some:(fun e -> expr_calls e acc) c in
    Option.fold ~none:acc ~some:(fun e -> expr_calls e acc) st
  | Sreturn (Some e) -> expr_calls e acc
  | Sreturn None | Sbreak | Scontinue -> acc
  | Sdecl { d_init = Some e; _ } -> expr_calls e acc
  | Sdecl _ -> acc
  | Sblock b -> List.fold_right stmt_calls b acc

(* A body is spliceable when its only return, if any, is the final
   top-level statement. *)
let spliceable_body body ~ret_void =
  let rec body_ok = function
    | [] -> ret_void
    | [ Sreturn (Some _) ] -> not ret_void
    | [ Sreturn None ] -> ret_void
    | [ s ] -> (not (has_return_stmt s)) && ret_void
    | s :: rest -> (not (has_return_stmt s)) && body_ok rest
  in
  body_ok body

let eligible ~auto_max ~explicit_max (f : func) =
  match f.f_body with
  | None -> false
  | Some body ->
    let weight = stmts_weight body in
    let bound = if f.f_inline then explicit_max else auto_max in
    weight <= bound
    && (not (List.mem f.f_name (List.fold_right stmt_calls body [])))
    && (not (List.exists has_static_decl body))
    && spliceable_body body ~ret_void:(f.f_ret = Void)
    && List.for_all
         (fun (t, _) -> match t with Array _ | Struct _ -> false | _ -> true)
         f.f_params

(* --- capture-safe renaming --- *)

(* Rename every local declaration in the spliced body with [suffix], and
   map parameter names to their temp variables. The mapping threads
   through statement lists (a decl affects later statements) and is copied
   into nested blocks (scoping). *)
let rec rename_expr map e =
  match e with
  | Eident n -> (
    match List.assoc_opt n map with Some n' -> Eident n' | None -> e)
  | Eint _ | Echar _ | Estr _ | Esizeof _ -> e
  | Ecall (f, args) -> Ecall (f, List.map (rename_expr map) args)
  | Eicall (c, args) ->
    Eicall (rename_expr map c, List.map (rename_expr map) args)
  | Ebin (op, a, b) -> Ebin (op, rename_expr map a, rename_expr map b)
  | Eun (op, a) -> Eun (op, rename_expr map a)
  | Ederef a -> Ederef (rename_expr map a)
  | Eaddr a -> Eaddr (rename_expr map a)
  | Eindex (a, b) -> Eindex (rename_expr map a, rename_expr map b)
  | Efield (a, f) -> Efield (rename_expr map a, f)
  | Earrow (a, f) -> Earrow (rename_expr map a, f)
  | Eassign (a, b) -> Eassign (rename_expr map a, rename_expr map b)
  | Ecompound (op, a, b) ->
    Ecompound (op, rename_expr map a, rename_expr map b)
  | Epostop (op, a) -> Epostop (op, rename_expr map a)
  | Ecast (t, a) -> Ecast (t, rename_expr map a)

let rec rename_stmts suffix map stmts =
  match stmts with
  | [] -> []
  | Sdecl d :: rest ->
    let n' = d.d_name ^ suffix in
    let d' =
      { d with d_name = n'; d_init = Option.map (rename_expr map) d.d_init }
    in
    Sdecl d' :: rename_stmts suffix ((d.d_name, n') :: map) rest
  | s :: rest -> rename_stmt suffix map s :: rename_stmts suffix map rest

and rename_stmt suffix map s =
  match s with
  | Sexpr e -> Sexpr (rename_expr map e)
  | Sif (c, a, b) ->
    Sif (rename_expr map c, rename_stmts suffix map a, rename_stmts suffix map b)
  | Swhile (c, b) -> Swhile (rename_expr map c, rename_stmts suffix map b)
  | Sdowhile (b, c) -> Sdowhile (rename_stmts suffix map b, rename_expr map c)
  | Sswitch (c, cases) ->
    Sswitch
      ( rename_expr map c,
        List.map
          (fun case ->
            { case with sc_body = rename_stmts suffix map case.sc_body })
          cases )
  | Sfor (i, c, st, b) ->
    Sfor
      ( Option.map (rename_expr map) i,
        Option.map (rename_expr map) c,
        Option.map (rename_expr map) st,
        rename_stmts suffix map b )
  | Sreturn e -> Sreturn (Option.map (rename_expr map) e)
  | Sbreak -> Sbreak
  | Scontinue -> Scontinue
  | Sdecl _ -> assert false (* handled in rename_stmts *)
  | Sblock b -> Sblock (rename_stmts suffix map b)

(* --- the transformation --- *)

type ctx = {
  inlinable : (string, func) Hashtbl.t;
  mutable fresh : int;
  mutable decisions : decision list;
  mutable caller : string;
}

let max_depth = 4

(* Extract inlinable calls from [e], which sits in an unconditionally
   evaluated position. Returns the rewritten expression plus prelude
   statements (reversed accumulation happens at the caller). *)
let rec extract ctx depth (e : expr) (prelude : stmt list ref) : expr =
  let recur e = extract ctx depth e prelude in
  match e with
  | Ecall (fname, args) -> (
    let args = List.map recur args in
    match
      if depth >= max_depth then None else Hashtbl.find_opt ctx.inlinable fname
    with
    | None -> Ecall (fname, args)
    | Some callee ->
      let n = ctx.fresh in
      ctx.fresh <- n + 1;
      ctx.decisions <-
        { caller = ctx.caller; callee = fname } :: ctx.decisions;
      let suffix = Printf.sprintf "__i%d" n in
      (* bind arguments to parameter temps *)
      let param_map =
        List.map (fun (_, pname) -> (pname, pname ^ suffix)) callee.f_params
      in
      List.iter2
        (fun (pty, pname) arg ->
          prelude :=
            Sdecl
              { d_static = false; d_ty = pty; d_name = pname ^ suffix;
                d_init = Some arg }
            :: !prelude)
        callee.f_params args;
      let body = rename_stmts suffix param_map (Option.get callee.f_body) in
      let ret_name = Printf.sprintf "__ret%s" suffix in
      let body, replacement =
        if callee.f_ret = Void then (body, Eint 0l)
        else begin
          match List.rev body with
          | Sreturn (Some re) :: before ->
            prelude :=
              Sdecl
                { d_static = false; d_ty = callee.f_ret; d_name = ret_name;
                  d_init = None }
              :: !prelude;
            ( List.rev (Sexpr (Eassign (Eident ret_name, re)) :: before),
              Eident ret_name )
          | _ -> assert false (* spliceable_body guarantees the shape *)
        end
      in
      (* recursively inline within the spliced body *)
      let body = List.concat_map (transform_stmt ctx (depth + 1)) body in
      prelude := List.rev_append body !prelude;
      replacement)
  | Eicall (c, args) -> Eicall (recur c, List.map recur args)
  | Ebin ((Bland | Blor), a, b) ->
    (* the right operand is conditionally evaluated: no extraction there *)
    Ebin ((match e with Ebin (op, _, _) -> op | _ -> assert false),
          recur a, b)
  | Ebin (op, a, b) -> Ebin (op, recur a, recur b)
  | Eun (op, a) -> Eun (op, recur a)
  | Ederef a -> Ederef (recur a)
  | Eaddr a -> Eaddr (recur a)
  | Eindex (a, b) -> Eindex (recur a, recur b)
  | Efield (a, f) -> Efield (recur a, f)
  | Earrow (a, f) -> Earrow (recur a, f)
  | Eassign (a, b) -> Eassign (recur a, recur b)
  | Ecompound (op, a, b) -> Ecompound (op, recur a, recur b)
  | Epostop (op, a) -> Epostop (op, recur a)
  | Ecast (t, a) -> Ecast (t, recur a)
  | Eint _ | Echar _ | Estr _ | Eident _ | Esizeof _ -> e

and transform_stmt ctx depth (s : stmt) : stmt list =
  match s with
  | Sexpr e ->
    let prelude = ref [] in
    let e' = extract ctx depth e prelude in
    List.rev (Sexpr e' :: !prelude)
  | Sif (c, a, b) ->
    let prelude = ref [] in
    let c' = extract ctx depth c prelude in
    let a' = List.concat_map (transform_stmt ctx depth) a in
    let b' = List.concat_map (transform_stmt ctx depth) b in
    List.rev (Sif (c', a', b') :: !prelude)
  | Swhile (c, b) ->
    (* loop conditions are re-evaluated: leave calls in place *)
    [ Swhile (c, List.concat_map (transform_stmt ctx depth) b) ]
  | Sdowhile (b, c) ->
    [ Sdowhile (List.concat_map (transform_stmt ctx depth) b, c) ]
  | Sswitch (c, cases) ->
    (* the scrutinee is evaluated exactly once *)
    let prelude = ref [] in
    let c' = extract ctx depth c prelude in
    let cases' =
      List.map
        (fun case ->
          { case with
            sc_body = List.concat_map (transform_stmt ctx depth) case.sc_body })
        cases
    in
    List.rev (Sswitch (c', cases') :: !prelude)
  | Sfor (i, c, st, b) ->
    let prelude = ref [] in
    let i' = Option.map (fun e -> extract ctx depth e prelude) i in
    let b' = List.concat_map (transform_stmt ctx depth) b in
    List.rev (Sfor (i', c, st, b') :: !prelude)
  | Sreturn (Some e) ->
    let prelude = ref [] in
    let e' = extract ctx depth e prelude in
    List.rev (Sreturn (Some e') :: !prelude)
  | Sreturn None | Sbreak | Scontinue -> [ s ]
  | Sdecl ({ d_init = Some e; d_static = false; _ } as d) ->
    let prelude = ref [] in
    let e' = extract ctx depth e prelude in
    List.rev (Sdecl { d with d_init = Some e' } :: !prelude)
  | Sdecl _ -> [ s ]
  | Sblock b -> [ Sblock (List.concat_map (transform_stmt ctx depth) b) ]

let run ?(auto_max = 3) ?(explicit_max = 12) (prog : program) : result =
  let inlinable = Hashtbl.create 16 in
  List.iter
    (function
      | Tfunc f when eligible ~auto_max ~explicit_max f ->
        Hashtbl.replace inlinable f.f_name f
      | _ -> ())
    prog;
  let ctx = { inlinable; fresh = 0; decisions = []; caller = "" } in
  let prog' =
    List.map
      (function
        | Tfunc ({ f_body = Some body; _ } as f) ->
          ctx.caller <- f.f_name;
          (* don't inline a function into itself *)
          let saved = Hashtbl.find_opt inlinable f.f_name in
          Hashtbl.remove inlinable f.f_name;
          let body' = List.concat_map (transform_stmt ctx 0) body in
          (match saved with
           | Some orig -> Hashtbl.replace inlinable f.f_name orig
           | None -> ());
          Tfunc { f with f_body = Some body' }
        | td -> td)
      prog
  in
  { program = prog'; decisions = List.rev ctx.decisions }
