(** MiniC compiler driver: source text to object file. *)

type options = {
  codegen : Codegen.options;
  inline_enabled : bool;
  auto_inline_max : int;  (** weight bound for un-annotated functions *)
  explicit_inline_max : int;  (** weight bound for [inline] functions *)
}

(** Distro-kernel-style build (the "run" kernel): single text section per
    unit, aligned loops, inlining on. *)
val run_build : options

(** Ksplice pre/post build: function/data sections, inlining on (the same
    inlining decisions as the run build — determinism across builds is
    what makes run-pre matching succeed). *)
val pre_build : options

type compiled = {
  obj : Objfile.t;
  inline_decisions : Inline.decision list;
}

(** Compilation failure as data: a lex/parse error with its line, or a
    type error — each carrying the unit name. *)
type error =
  | Parse_error of { unit_name : string; line : int; msg : string }
  | Type_error of { unit_name : string; msg : string }

val pp_error : Format.formatter -> error -> unit

(** [compile ~options ~unit_name src] compiles one unit. Total: lexer,
    parser, and typechecker failures come back as typed errors. *)
val compile :
  options:options -> unit_name:string -> string -> (compiled, error) result

exception Error of string
(** Compilation failure rendered through {!pp_error} — raised only by
    {!compile_exn}. *)

(** Legacy raising variant of {!compile}. @raise Error *)
val compile_exn : options:options -> unit_name:string -> string -> compiled
