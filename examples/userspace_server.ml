(* User-space hot updates: "the Ksplice techniques apply to other
   operating systems and to user space applications" (§1).

     dune exec examples/userspace_server.exe

   The "application" is a long-running request server: worker threads
   drain a request ring through a handler function. We hot-patch a bug in
   the handler while the workers keep running — no restart, and the
   accumulated state (requests already processed, the live ring) is
   preserved, which is precisely what a restart would destroy. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Image = Klink.Image
module Machine = Kernel.Machine
module Create = Ksplice.Create
module Apply = Ksplice.Apply

let server_source =
  {|
int requests[64];
int head = 0;
int tail = 0;
int processed = 0;
int checksum = 0;

void submit(int r) {
  requests[tail & 63] = r;
  tail = tail + 1;
}

/* the bug: negative request ids corrupt the checksum instead of being
   rejected. (The handler is deliberately big enough that the compiler
   does not inline it into the non-quiescent worker loop - patching a
   function inlined into worker() would be refused, exactly as the paper
   refuses to patch schedule().) */
int handle(int r) {
  int v = r;
  int bucket = v & 7;
  checksum = checksum + v;
  requests[bucket & 63] = requests[bucket & 63];
  return v;
}

void worker() {
  while (1) {
    if (head < tail) {
      handle(requests[head & 63]);
      head = head + 1;
      processed = processed + 1;
    }
    __yield();
  }
}

int stats(int which) {
  if (which == 0)
    return processed;
  return checksum;
}
|}

let patched_source =
  {|
int requests[64];
int head = 0;
int tail = 0;
int processed = 0;
int checksum = 0;

void submit(int r) {
  requests[tail & 63] = r;
  tail = tail + 1;
}

/* the bug: negative request ids corrupt the checksum instead of being
   rejected */
int handle(int r) {
  int v = r;
  int bucket = v & 7;
  if (v < 0)
    return -1;
  checksum = checksum + v;
  requests[bucket & 63] = requests[bucket & 63];
  return v;
}

void worker() {
  while (1) {
    if (head < tail) {
      handle(requests[head & 63]);
      head = head + 1;
      processed = processed + 1;
    }
    __yield();
  }
}

int stats(int which) {
  if (which == 0)
    return processed;
  return checksum;
}
|}

let () =
  print_endline "== user-space server hot update ==";
  let tree = Tree.of_list [ ("server/main.c", server_source) ] in
  let build = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree in
  let img = Image.link_exn ~base:0x100000 (Kbuild.objects build) in
  let m = Machine.create img in
  let addr name = (Option.get (Image.lookup_global img name)).Image.addr in
  let call name args =
    match Machine.call_function m ~addr:(addr name) ~args with
    | Ok v -> v
    | Error f -> Format.kasprintf failwith "%s: %a" name Machine.pp_fault f
  in
  (* start the worker thread; it survives the whole session *)
  ignore
    (Machine.spawn m ~name:"worker" ~uid:1000 ~entry:(addr "worker") ~args:[]);

  (* phase 1: legitimate traffic *)
  for r = 1 to 20 do
    ignore (call "submit" [ Int32.of_int r ])
  done;
  ignore (Machine.run m ~steps:20_000 : int);
  Printf.printf "phase 1: processed=%ld checksum=%ld (expected 20, 210)\n"
    (call "stats" [ 0l ]) (call "stats" [ 1l ]);

  (* hot-patch the handler while workers run *)
  let patch =
    Diff.diff_trees tree (Tree.of_list [ ("server/main.c", patched_source) ])
  in
  let { Create.update; _ } =
    match
      Create.create
        { source = tree; patch; update_id = "reject-negative";
          description = "reject negative request ids" }
    with
    | Ok c -> c
    | Error e -> Format.kasprintf failwith "create: %a" Create.pp_error e
  in
  let mgr = Apply.init m in
  (match Apply.apply mgr update with
   | Ok a ->
     Printf.printf
       "hot update applied while the worker ran (pause %.3f ms); state \
        preserved: processed=%ld\n"
       (float_of_int a.pause_ns /. 1e6)
       (call "stats" [ 0l ])
   | Error e -> Format.kasprintf failwith "apply: %a" Apply.pp_error e);

  (* phase 2: hostile traffic bounces off the patched handler *)
  for r = 1 to 10 do
    ignore (call "submit" [ Int32.of_int (-r) ])
  done;
  ignore (Machine.run m ~steps:20_000 : int);
  Printf.printf
    "phase 2: processed=%ld checksum=%ld (checksum unchanged: negatives \
     rejected)\n"
    (call "stats" [ 0l ]) (call "stats" [ 1l ]);
  print_endline "done."
