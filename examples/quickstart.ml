(* Quickstart: the whole Ksplice pipeline on a three-function kernel.

     dune exec examples/quickstart.exe

   Builds and boots a tiny kernel, writes a source patch, converts it
   into a hot update (pre-post differencing), applies it to the running
   kernel (run-pre matching + trampolines), observes the behaviour
   change, and reverses it. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Image = Klink.Image
module Machine = Kernel.Machine
module Create = Ksplice.Create
module Apply = Ksplice.Apply

let kernel_source =
  {|
int boot_count = 1;

int get_multiplier() { return 2; }

int compute(int x) {
  int acc = 0;
  int i;
  for (i = 0; i < x; i = i + 1)
    acc = acc + get_multiplier();
  return acc + boot_count;
}
|}

let () =
  print_endline "== Ksplice quickstart ==";

  (* 1. boot a kernel the way a distro would build it: one .text per
     unit, no preparation for hot updates whatsoever *)
  let tree = Tree.of_list [ ("kernel/main.c", kernel_source) ] in
  let build = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree in
  let image = Image.link_exn ~base:0x100000 (Kbuild.objects build) in
  let machine = Machine.create image in
  let call name args =
    let sym = Option.get (Image.lookup_global image name) in
    match Machine.call_function machine ~addr:sym.addr ~args with
    | Ok v -> v
    | Error f -> Format.kasprintf failwith "%s faulted: %a" name Machine.pp_fault f
  in
  Printf.printf "[boot] compute(5) = %ld\n" (call "compute" [ 5l ]);

  (* 2. a traditional source patch: note it touches get_multiplier only;
     Ksplice will discover that compute's object code changes too,
     because get_multiplier was inlined into it *)
  let replace old_s new_s s =
    let i =
      let rec find i =
        if String.sub s i (String.length old_s) = old_s then i else find (i + 1)
      in
      find 0
    in
    String.sub s 0 i ^ new_s
    ^ String.sub s
        (i + String.length old_s)
        (String.length s - i - String.length old_s)
  in
  let patched_tree =
    Tree.of_list
      [ ( "kernel/main.c",
          replace "int get_multiplier() { return 2; }"
            "int get_multiplier() { return 3; }" kernel_source ) ]
  in
  let patch = Diff.diff_trees tree patched_tree in
  Printf.printf "[patch]\n%s" (Diff.to_string patch);

  (* 3. ksplice-create: build pre and post with function sections and
     diff the object code *)
  let { Create.update; diffs; _ } =
    match
      Create.create
        { source = tree; patch; update_id = "quickstart-1";
          description = "triple the multiplier" }
    with
    | Ok c -> c
    | Error e -> Format.kasprintf failwith "create: %a" Create.pp_error e
  in
  List.iter
    (fun (d : Ksplice.Prepost.unit_diff) ->
      Printf.printf "[create] %s: functions to replace: %s\n" d.unit_name
        (String.concat ", " d.changed_functions))
    diffs;

  (* 4. ksplice-apply *)
  let mgr = Apply.init machine in
  (match Apply.apply mgr update with
   | Ok a ->
     Printf.printf
       "[apply] ok; run-pre matched, %d trampoline(s) inserted, simulated \
        pause %.3f ms\n"
       (List.length a.saved)
       (float_of_int a.pause_ns /. 1e6)
   | Error e -> Format.kasprintf failwith "apply: %a" Apply.pp_error e);
  Printf.printf "[patched] compute(5) = %ld   (was 11, now uses *3)\n"
    (call "compute" [ 5l ]);

  (* 5. ksplice-undo *)
  (match Apply.undo mgr "quickstart-1" with
   | Ok () -> print_endline "[undo] original code restored"
   | Error e -> Format.kasprintf failwith "undo: %a" Apply.pp_error e);
  Printf.printf "[restored] compute(5) = %ld\n" (call "compute" [ 5l ]);
  print_endline "done."
