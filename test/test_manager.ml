(* The supervised update manager: watchdog deadlines, the deterministic
   retry queue, the health gate with auto-revert, and the structured
   event log. Each test boots the tiny two-function kernel from the
   fault-injection suite; the corpus-wide behaviour is covered by the
   manager sweep (Corpus.Sweep.run_manager). *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Image = Klink.Image
module Machine = Kernel.Machine
module Create = Ksplice.Create
module Apply = Ksplice.Apply
module Txn = Ksplice.Txn
module Faultinj = Ksplice.Faultinj

let t name f = Alcotest.test_case name `Quick f

let replace old_s new_s s =
  let rec find i =
    if i + String.length old_s > String.length s then
      Alcotest.failf "pattern %S not found" old_s
    else if String.sub s i (String.length old_s) = old_s then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ new_s
  ^ String.sub s (i + String.length old_s)
      (String.length s - i - String.length old_s)

let base_src =
  {|
int fares = 7;
int fare(int z) {
  int acc = 0;
  int i;
  for (i = 0; i < z; i = i + 1)
    acc = acc + fares;
  return acc;
}
int churn(int n) {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1)
    acc = acc + fare(3);
  return acc;
}
|}

let boot src =
  let tree = Tree.of_list [ ("k/t.c", src) ] in
  let build = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree in
  let img = Image.link_exn ~base:0x100000 (Kbuild.objects build) in
  (tree, img, Machine.create img)

let call m img name args =
  let sym = Option.get (Image.lookup_global img name) in
  match Machine.call_function m ~addr:sym.addr ~args with
  | Ok v -> v
  | Error f -> Alcotest.failf "%s faulted: %a" name Machine.pp_fault f

let mk_update ?supersedes ~id tree tree' =
  match
    Create.create ?supersedes
      { source = tree; patch = Diff.diff_trees tree tree'; update_id = id;
        description = id }
  with
  | Ok c -> c.update
  | Error e -> Alcotest.failf "create: %a" Create.pp_error e

let patched_fare tree =
  Tree.add tree "k/t.c"
    (replace "acc = acc + fares;" "acc = acc + fares + 1;"
       (Option.get (Tree.find tree "k/t.c")))

let park_churner m img =
  (* a thread spinning inside fare itself: quiescence can never hold *)
  let entry = (Option.get (Image.lookup_global img "fare")).addr in
  ignore (Machine.spawn m ~name:"churner" ~uid:0 ~entry ~args:[ 100000000l ]);
  ignore (Machine.run m ~steps:50 : int)

let check_identical what m snap =
  match Machine.diff_snapshot m snap with
  | [] -> ()
  | diffs ->
    Alcotest.failf "%s: machine diverged from snapshot:\n  %s" what
      (String.concat "\n  " diffs)

let test_policy =
  { Manager.default_policy with
    deadline = 600;
    apply_attempts = 50;
    retry_limit = 3;
    backoff_base = 100;
    backoff_cap = 400;
    jitter = 50;
    seed = 11 }

let kinds_of t id =
  List.filter_map
    (fun (e : Manager.Event.t) ->
      if String.equal e.update id then Some e.kind else None)
    (Manager.events t)

(* --- the watchdog, at the Apply layer --- *)

let test_deadline_exceeded_rolls_back () =
  let tree, img, m = boot base_src in
  park_churner m img;
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let ap = Apply.init m in
  let snap = Machine.snapshot m in
  match
    Apply.apply ap ~max_attempts:100 ~retry_base:64 ~retry_cap:1024
      ~retry_budget:100000 ~deadline:500 u
  with
  | Ok _ -> Alcotest.fail "expected Deadline_exceeded"
  | Error (Apply.Deadline_exceeded { de_budget; de_diag }) ->
    Alcotest.(check int) "reported budget" 500 de_budget;
    Alcotest.(check bool) "backoff clamped to the deadline" true
      (de_diag.nq_steps_run > 0 && de_diag.nq_steps_run <= 500);
    Alcotest.(check bool) "attempts remained" true (de_diag.nq_attempts < 100);
    Alcotest.(check bool) "blockers diagnosed" true
      (de_diag.nq_blockers <> []);
    check_identical "rollback after deadline" m snap
  | Error e -> Alcotest.failf "unexpected error: %a" Apply.pp_error e

(* --- the retry queue --- *)

let test_retry_queue_parks_after_limit () =
  let tree, img, m = boot base_src in
  park_churner m img;
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let mgr = Manager.create ~policy:test_policy (Apply.init m) in
  Manager.submit mgr u;
  Manager.run mgr;
  (match Manager.status mgr "fare" with
   | Some (Manager.Parked (Manager.Exhausted_retries nq)) ->
     Alcotest.(check bool) "blockers preserved in park diagnostics" true
       (nq.Apply.nq_blockers <> [])
   | Some s -> Alcotest.failf "unexpected status: %a" Manager.pp_status s
   | None -> Alcotest.fail "update not tracked");
  Alcotest.(check int) "retry limit honoured" 3 (Manager.attempts mgr "fare");
  Alcotest.(check int) "no audit violations" 0 (Manager.violations mgr);
  (* the retry delays follow the seeded exponential backoff policy:
     min(cap, base * 2^(n-1)) <= delay < that + jitter *)
  let retries =
    List.filter
      (fun (e : Manager.Event.t) -> e.kind = Manager.Event.Retried)
      (Manager.events mgr)
  in
  Alcotest.(check int) "one retry per non-final attempt" 2
    (List.length retries);
  List.iter
    (fun (e : Manager.Event.t) ->
      let expo = min 400 (100 * (1 lsl (e.attempt - 1))) in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d delay %d within policy" e.attempt e.steps)
        true
        (e.steps >= expo && e.steps < expo + 50))
    retries;
  (* liveness: nothing is left waiting, and the kernel still runs the old
     code *)
  Alcotest.(check bool) "terminal state" true
    (List.for_all
       (fun (_, s) -> s <> Manager.Waiting)
       (Manager.statuses mgr));
  Alcotest.(check (list string)) "nothing applied" []
    (List.map
       (fun (a : Apply.applied) -> a.update.Ksplice.Update.update_id)
       (Apply.applied (Manager.apply_state mgr)))

let heal_run () =
  (* a transient quiescence veto on the first attempt only: the retry
     queue must carry the update to a healthy second attempt *)
  let tree, _img, m = boot base_src in
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let session =
    Faultinj.make m
      { step = Txn.Quiesce; kind = Faultinj.Forced_not_quiescent; seed = 3 }
  in
  let mgr = Manager.create ~policy:test_policy (Apply.init m) in
  Manager.submit mgr u
    ~inject:(fun ~attempt -> if attempt = 1 then Some session else None);
  Manager.run mgr;
  mgr

let test_retry_queue_heals_transient_veto () =
  let mgr = heal_run () in
  (match Manager.status mgr "fare" with
   | Some Manager.Applied_healthy -> ()
   | Some s -> Alcotest.failf "unexpected status: %a" Manager.pp_status s
   | None -> Alcotest.fail "update not tracked");
  Alcotest.(check int) "healed on the second attempt" 2
    (Manager.attempts mgr "fare");
  Alcotest.(check int) "no audit violations" 0 (Manager.violations mgr);
  let kinds = kinds_of mgr "fare" in
  Alcotest.(check bool) "event log shows the retry" true
    (List.mem Manager.Event.Retried kinds
     && List.mem Manager.Event.Apply_failed kinds
     && List.mem Manager.Event.Healthy kinds)

let test_event_log_deterministic () =
  (* the manager has no clocks and no Random: identical boots, policy and
     faults must serialize to the identical event log *)
  let a = Report.Json.to_string (Manager.report (heal_run ())) in
  let b = Report.Json.to_string (Manager.report (heal_run ())) in
  Alcotest.(check string) "replayable event log" a b

(* --- the health gate --- *)

let test_health_gate_auto_reverts () =
  let tree, img, m = boot base_src in
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let mgr = Manager.create ~policy:test_policy (Apply.init m) in
  let canary = ref 0 in
  Manager.submit mgr u
    ~health:
      [ { Manager.hc_name = "canary";
          hc_probe =
            (fun () ->
              incr canary;
              Error "canary died") } ];
  Manager.run mgr;
  Alcotest.(check bool) "probe actually ran" true (!canary > 0);
  (match Manager.status mgr "fare" with
   | Some (Manager.Quarantined { evidence; reverted }) ->
     Alcotest.(check bool) "auto-reverted" true reverted;
     Alcotest.(check bool) "evidence names the probe" true
       (List.exists (fun (n, _) -> n = "canary") evidence)
   | Some s -> Alcotest.failf "unexpected status: %a" Manager.pp_status s
   | None -> Alcotest.fail "update not tracked");
  let kinds = kinds_of mgr "fare" in
  Alcotest.(check bool) "gate events logged" true
    (List.mem Manager.Event.Health_failed kinds
     && List.mem Manager.Event.Reverted kinds
     && List.mem Manager.Event.Quarantined kinds);
  Alcotest.(check int) "no audit violations" 0 (Manager.violations mgr);
  Alcotest.(check (list string)) "stack empty after auto-revert" []
    (List.map
       (fun (a : Apply.applied) -> a.update.Ksplice.Update.update_id)
       (Apply.applied (Manager.apply_state mgr)));
  Alcotest.(check int32) "old behaviour restored" 21l
    (call m img "fare" [ 3l ])

let test_duplicate_submit_rejected () =
  let tree, _img, m = boot base_src in
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let mgr = Manager.create (Apply.init m) in
  Manager.submit mgr u;
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Manager.submit: fare already submitted") (fun () ->
      Manager.submit mgr u)

(* --- supervised atomic replace --- *)

let patched_fare2 tree =
  Tree.add tree "k/t.c"
    (replace "acc = acc + fares + 1;" "acc = acc + fares + 2;"
       (Option.get (Tree.find tree "k/t.c")))

let stack_ids mgr =
  List.rev_map
    (fun (a : Apply.applied) -> a.update.Ksplice.Update.update_id)
    (Apply.applied (Manager.apply_state mgr))

let stacked_manager () =
  let tree, img, m = boot base_src in
  let tree1 = patched_fare tree in
  let tree2 = patched_fare2 tree1 in
  let mgr = Manager.create ~policy:test_policy (Apply.init m) in
  Manager.submit mgr (mk_update ~id:"fare" tree tree1);
  Manager.submit mgr (mk_update ~id:"fare-2" tree1 tree2);
  Manager.run mgr;
  Alcotest.(check (list string)) "chain stacked" [ "fare"; "fare-2" ]
    (stack_ids mgr);
  let cum =
    mk_update ~supersedes:[ "fare"; "fare-2" ] ~id:"fare-cum" tree tree2
  in
  (mgr, img, m, cum)

let test_submit_cumulative_collapses () =
  let mgr, img, m, cum = stacked_manager () in
  Manager.submit_cumulative mgr cum;
  Manager.run mgr;
  (match Manager.status mgr "fare-cum" with
   | Some Manager.Applied_healthy -> ()
   | Some s -> Alcotest.failf "unexpected status: %a" Manager.pp_status s
   | None -> Alcotest.fail "cumulative update not tracked");
  Alcotest.(check (list string)) "stack collapsed" [ "fare-cum" ]
    (stack_ids mgr);
  Alcotest.(check int32) "cumulative behaviour" 27l (call m img "fare" [ 3l ]);
  Alcotest.(check int) "no audit violations" 0 (Manager.violations mgr);
  (* a non-cumulative update is rejected at submit time *)
  let tree, _, _ = boot base_src in
  let plain = mk_update ~id:"plain" tree (patched_fare tree) in
  Alcotest.check_raises "supersedes nothing"
    (Invalid_argument "Manager.submit_cumulative: plain supersedes nothing")
    (fun () -> Manager.submit_cumulative mgr plain)

let test_cumulative_health_gate_restores_stack () =
  let mgr, img, m, cum = stacked_manager () in
  Manager.submit_cumulative mgr cum
    ~health:
      [ { Manager.hc_name = "canary"; hc_probe = (fun () -> Error "died") } ];
  Manager.run mgr;
  (match Manager.status mgr "fare-cum" with
   | Some (Manager.Quarantined { reverted; _ }) ->
     Alcotest.(check bool) "auto-reverted" true reverted
   | Some s -> Alcotest.failf "unexpected status: %a" Manager.pp_status s
   | None -> Alcotest.fail "cumulative update not tracked");
  Alcotest.(check (list string)) "displaced stack restored"
    [ "fare"; "fare-2" ] (stack_ids mgr);
  Alcotest.(check int32) "stacked behaviour back" 27l
    (call m img "fare" [ 3l ]);
  Alcotest.(check int) "no audit violations" 0 (Manager.violations mgr)

(* --- a quick slice of the corpus-wide supervised sweep --- *)

let test_manager_sweep_subset () =
  let cves =
    List.filter
      (fun (c : Corpus.Cve.t) ->
        List.mem c.id [ "CVE-2006-2451"; "CVE-2008-0007" ])
      Corpus.Cve.all
  in
  let r = Corpus.Sweep.run_manager ~seed:5 ~cves ~domains:1 () in
  Alcotest.(check int) "cells" 6 r.Corpus.Sweep.m_cells_total;
  Alcotest.(check int) "no audit violations" 0 r.Corpus.Sweep.m_violations;
  (match
     List.concat_map
       (fun (row : Corpus.Sweep.mrow) ->
         List.concat_map
           (fun (_, c) -> c.Corpus.Sweep.mc_notes)
           row.Corpus.Sweep.m_cells)
       r.Corpus.Sweep.m_rows
   with
   | [] -> ()
   | notes -> Alcotest.failf "contract breaches:\n%s"
                (String.concat "\n" notes));
  Alcotest.(check bool) "sweep verdict" true (Corpus.Sweep.manager_ok r)

let suite =
  [
    ( "manager",
      [
        t "deadline exceeded aborts and rolls back"
          test_deadline_exceeded_rolls_back;
        t "retry queue parks after limit" test_retry_queue_parks_after_limit;
        t "retry queue heals a transient veto"
          test_retry_queue_heals_transient_veto;
        t "event log is deterministic" test_event_log_deterministic;
        t "health gate auto-reverts and quarantines"
          test_health_gate_auto_reverts;
        t "duplicate submit rejected" test_duplicate_submit_rejected;
        t "supervised atomic replace collapses the stack"
          test_submit_cumulative_collapses;
        t "health gate restores the displaced stack"
          test_cumulative_health_gate_restores_stack;
        t "manager sweep subset" test_manager_sweep_subset;
      ] );
  ]
