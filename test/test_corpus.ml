(* Corpus tests: the synthetic kernel boots and behaves, all 64 CVE
   patches compile and convert into updates, the four exploits work
   before and stop working after their updates, and the stress workload
   detects no corruption across applies. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Machine = Kernel.Machine
module Create = Ksplice.Create
module Apply = Ksplice.Apply

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f
let base () = Corpus.Base_kernel.tree ()

let create_update ?(hot = true) (cve : Corpus.Cve.t) =
  let b = base () in
  let patch =
    if hot then Corpus.Cve.hot_patch cve b else Corpus.Cve.mainline_patch cve b
  in
  Create.create
    { source = b; patch; update_id = cve.id; description = cve.desc }

let create_update_exn cve =
  match create_update cve with
  | Ok c -> c.update
  | Error e -> Alcotest.failf "%s: create failed: %a" cve.id Create.pp_error e

let test_boot () =
  let b = Corpus.Boot.boot () in
  check Alcotest.int32 "boot token planted" Corpus.Boot.secret
    (Corpus.Boot.read_global b "boot_token");
  check Alcotest.int32 "boot_done" 1l (Corpus.Boot.read_global b "boot_done");
  match Corpus.Boot.syscall b ~uid:1000 0 [] with
  | Ok 1l -> ()
  | Ok v -> Alcotest.failf "getpid returned %ld" v
  | Error f -> Alcotest.failf "getpid faulted: %a" Machine.pp_fault f

let test_syscall_bounds () =
  let b = Corpus.Boot.boot () in
  (* out-of-range positive numbers are rejected by the entry path *)
  match Corpus.Boot.syscall b ~uid:1000 99 [] with
  | Ok (-1l) -> ()
  | Ok v -> Alcotest.failf "expected -1, got %ld" v
  | Error f -> Alcotest.failf "faulted: %a" Machine.pp_fault f

let test_corpus_size () =
  Alcotest.(check int) "64 CVEs" 64 (List.length Corpus.Cve.all);
  let customs =
    List.filter (fun (c : Corpus.Cve.t) -> c.custom <> None) Corpus.Cve.all
  in
  Alcotest.(check int) "8 custom-code CVEs" 8 (List.length customs);
  let field =
    List.filter
      (fun (c : Corpus.Cve.t) ->
        match c.custom with
        | Some (Corpus.Cve.Adds_struct_field, _) -> true
        | _ -> false)
      Corpus.Cve.all
  in
  Alcotest.(check int) "1 adds-struct-field CVE" 1 (List.length field);
  let ids = List.map (fun (c : Corpus.Cve.t) -> c.id) Corpus.Cve.all in
  Alcotest.(check int) "ids unique" 64 (List.length (List.sort_uniq compare ids))

let test_all_fixed_trees_compile () =
  let b = base () in
  List.iter
    (fun (cve : Corpus.Cve.t) ->
      let tree = Corpus.Cve.hot_tree cve b in
      match Kbuild.build_tree ~options:Minic.Driver.pre_build tree with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "%s: fixed tree does not build: %a" cve.id
          Kbuild.pp_error e)
    Corpus.Cve.all

let test_all_patches_create () =
  List.iter
    (fun (cve : Corpus.Cve.t) ->
      match create_update cve with
      | Ok c ->
        Alcotest.(check bool)
          (cve.id ^ ": replaces at least one function")
          true
          (c.update.replaced_functions <> []
           || List.exists
                (fun (d : Ksplice.Prepost.unit_diff) -> d.new_functions <> [])
                c.diffs)
      | Error e ->
        Alcotest.failf "%s: create failed: %a" cve.id Create.pp_error e)
    Corpus.Cve.all

let test_data_gate_without_custom () =
  (* the declaration-initializer Table-1 entries must be refused when the
     custom code is stripped from the patch *)
  List.iter
    (fun id ->
      let cve = Option.get (Corpus.Cve.find id) in
      match create_update ~hot:false cve with
      | Error (Create.Data_semantics_changed _) -> ()
      | Ok _ -> Alcotest.failf "%s: expected the data-semantics gate" id
      | Error e -> Alcotest.failf "%s: unexpected error: %a" id Create.pp_error e)
    [ "CVE-2007-3851"; "CVE-2006-5753" ]

let apply_cve b (cve : Corpus.Cve.t) =
  let update = create_update_exn cve in
  let mgr = Apply.init b.Corpus.Boot.machine in
  match Apply.apply mgr update with
  | Ok a -> (mgr, a)
  | Error e -> Alcotest.failf "%s: apply failed: %a" cve.id Apply.pp_error e

let test_exploits_before_after () =
  List.iter
    (fun (e : Corpus.Exploits.t) ->
      let cve =
        match Corpus.Cve.find e.cve_id with
        | Some c -> c
        | None -> Alcotest.failf "no CVE %s" e.cve_id
      in
      (* fresh kernel: exploit must succeed *)
      let b = Corpus.Boot.boot () in
      let before = e.run b in
      Alcotest.(check bool)
        (e.cve_id ^ " exploitable before update (" ^ before.detail ^ ")")
        true before.succeeded;
      (* separate fresh kernel: apply, then the exploit must fail *)
      let b2 = Corpus.Boot.boot () in
      let _mgr, _ = apply_cve b2 cve in
      let after = e.run b2 in
      Alcotest.(check bool)
        (e.cve_id ^ " blocked after update (" ^ after.detail ^ ")")
        false after.succeeded)
    Corpus.Exploits.all

let test_exploit_returns_after_undo () =
  let e = Option.get (Corpus.Exploits.find "CVE-2006-2451") in
  let cve = Option.get (Corpus.Cve.find "CVE-2006-2451") in
  let b = Corpus.Boot.boot () in
  let mgr, _ = apply_cve b cve in
  Alcotest.(check bool) "blocked while applied" false (e.run b).succeeded;
  (match Apply.undo mgr cve.id with
   | Ok () -> ()
   | Error err -> Alcotest.failf "undo failed: %a" Apply.pp_error err);
  Alcotest.(check bool) "exploitable again after undo" true (e.run b).succeeded

let test_stress_clean () =
  let b = Corpus.Boot.boot () in
  let r = Corpus.Stress.run b in
  if not r.ok then
    Alcotest.failf "stress failed: %s" (String.concat "; " r.failures)

let test_stress_across_update () =
  (* apply a hot update while the stress workload is mid-flight *)
  let b = Corpus.Boot.boot () in
  let cve = Option.get (Corpus.Cve.find "CVE-2006-2451") in
  let update = create_update_exn cve in
  let mgr = Apply.init b.machine in
  let applied = ref false in
  let r =
    Corpus.Stress.run b ~during:(fun () ->
        match Apply.apply mgr update with
        | Ok _ -> applied := true
        | Error e -> Alcotest.failf "mid-flight apply failed: %a" Apply.pp_error e)
  in
  Alcotest.(check bool) "update applied under load" true !applied;
  if not r.ok then
    Alcotest.failf "stress failed across update: %s"
      (String.concat "; " r.failures)

let test_custom_quota_fixup () =
  let b = Corpus.Boot.boot () in
  let cve = Option.get (Corpus.Cve.find "CVE-2008-0007") in
  check Alcotest.int32 "uid0 quota before" 1024l
    (Corpus.Boot.read_global b "quota_table");
  let _ = apply_cve b cve in
  (* the ksplice_apply hook rewrote the live table entry *)
  check Alcotest.int32 "uid0 quota fixed by hook" 4096l
    (Corpus.Boot.read_global b "quota_table")

let test_custom_tz_fixup () =
  let b = Corpus.Boot.boot () in
  let cve = Option.get (Corpus.Cve.find "CVE-2007-3851") in
  check Alcotest.int32 "tz before" 0l (Corpus.Boot.read_global b "tz_minutes");
  let _ = apply_cve b cve in
  check Alcotest.int32 "tz fixed" 60l (Corpus.Boot.read_global b "tz_minutes")

let test_shadow_struct_field () =
  (* CVE-2005-2709: the peer-uid field added via shadow data structures *)
  let b = Corpus.Boot.boot () in
  let cve = Option.get (Corpus.Cve.find "CVE-2005-2709") in
  let mgr, _ = apply_cve b cve in
  (* set then read the shadow peer uid through the new socket options *)
  (match Corpus.Boot.syscall b ~uid:0 16 [ 2l; 4l; 42l ] with
   | Ok 0l -> ()
   | Ok v -> Alcotest.failf "set peer returned %ld" v
   | Error f -> Alcotest.failf "set peer faulted: %a" Machine.pp_fault f);
  (match Corpus.Boot.syscall b ~uid:0 16 [ 2l; 5l; 0l ] with
   | Ok 42l -> ()
   | Ok v -> Alcotest.failf "get peer returned %ld" v
   | Error f -> Alcotest.failf "get peer faulted: %a" Machine.pp_fault f);
  (* undo detaches the shadows and restores the old code *)
  (match Apply.undo mgr cve.id with
   | Ok () -> ()
   | Error e -> Alcotest.failf "undo failed: %a" Apply.pp_error e);
  match Corpus.Boot.syscall b ~uid:0 16 [ 2l; 4l; 7l ] with
  | Ok (-1l) -> ()
  | Ok v -> Alcotest.failf "old code should reject op 4, got %ld" v
  | Error f -> Alcotest.failf "faulted after undo: %a" Machine.pp_fault f

let test_patch_size_distribution () =
  let b = base () in
  let sizes =
    List.map
      (fun (cve : Corpus.Cve.t) ->
        (Diff.stats (Corpus.Cve.mainline_patch cve b)).changed)
      Corpus.Cve.all
  in
  let le n = List.length (List.filter (fun s -> s <= n) sizes) in
  (* Figure 3's shape: strongly left-skewed *)
  Alcotest.(check bool) "at least 30 patches <= 5 lines" true (le 5 >= 30);
  Alcotest.(check bool) "at least 48 patches <= 15 lines" true (le 15 >= 48);
  Alcotest.(check bool) "at least one patch > 80 lines" true
    (List.exists (fun s -> s > 80) sizes)

let test_custom_code_lines () =
  List.iter
    (fun (cve : Corpus.Cve.t) ->
      match cve.custom with
      | None ->
        Alcotest.(check int) (cve.id ^ " no custom code") 0
          (Corpus.Cve.custom_code_lines cve)
      | Some _ ->
        Alcotest.(check bool)
          (cve.id ^ " custom code measured")
          true
          (Corpus.Cve.custom_code_lines cve > 0))
    Corpus.Cve.all

let test_full_sweep () =
  (* the §6.3 headline: every CVE's hot patch applies to a freshly booted
     kernel and the stress workload still passes *)
  List.iter
    (fun (cve : Corpus.Cve.t) ->
      let b = Corpus.Boot.boot () in
      let mgr, _ = apply_cve b cve in
      let r = Corpus.Stress.run b ~threads:2 ~iterations:10 in
      if not r.ok then
        Alcotest.failf "%s: stress failed after apply: %s" cve.id
          (String.concat "; " r.failures);
      match Apply.verify mgr with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: verify: %a" cve.id Apply.pp_error e)
    Corpus.Cve.all

let test_cross_version_rejection () =
  (* §4.2's "original source that does not correspond to the running
     kernel": an update built against the 2005 base must refuse to apply
     on the 2008 release, whose code already incorporates that fix *)
  let versions = Corpus.Versions.all () in
  let newest = List.nth versions 3 in
  let b = Corpus.Boot.boot ~tree:newest.tree () in
  let rejected = ref 0 and accepted = ref [] in
  List.iter
    (fun id ->
      let cve = Option.get (Corpus.Cve.find id) in
      let update = create_update_exn cve in
      let mgr = Apply.init b.machine in
      match Apply.apply mgr update with
      | Error (Apply.Code_mismatch _ | Apply.Ambiguous_symbol _) ->
        incr rejected
      | Error e ->
        Alcotest.failf "%s: unexpected error class: %a" id Apply.pp_error e
      | Ok _ -> accepted := id :: !accepted)
    [ "CVE-2005-3110"; "CVE-2005-3111"; "CVE-2006-2451"; "CVE-2006-3136";
      "CVE-2007-3139" ];
  Alcotest.(check (list string))
    "no base-built update silently applies to the newer kernel" []
    !accepted;
  Alcotest.(check int) "all rejected" 5 !rejected;
  (* and the kernel still works afterwards: the aborts were safe *)
  let r = Corpus.Stress.run b ~threads:2 ~iterations:8 in
  if not r.ok then
    Alcotest.failf "stress after rejected applies: %s"
      (String.concat "; " r.failures)

let test_release_line () =
  let versions = Corpus.Versions.all () in
  Alcotest.(check int) "four releases" 4 (List.length versions);
  (* monotonically fewer applicable CVEs *)
  let counts =
    List.map (fun v -> List.length (Corpus.Versions.applicable v)) versions
  in
  Alcotest.(check bool) "monotone decreasing" true
    (List.sort (fun a b -> compare b a) counts = counts);
  Alcotest.(check int) "oldest needs all" 64 (List.hd counts);
  (* every release boots and passes stress *)
  List.iter
    (fun (v : Corpus.Versions.t) ->
      let b = Corpus.Boot.boot ~tree:v.tree () in
      let r = Corpus.Stress.run b ~threads:2 ~iterations:8 in
      if not r.ok then
        Alcotest.failf "%s: stress failed: %s" v.name
          (String.concat "; " r.failures))
    versions

let test_release_patch_applies () =
  (* a 2008-era CVE still applies to the newest release and hot-patches
     it; a 2005-era one no longer applies there *)
  let versions = Corpus.Versions.all () in
  let newest = List.nth versions 3 in
  let old_cve = Option.get (Corpus.Cve.find "CVE-2005-3110") in
  Alcotest.(check bool) "2005 fix already shipped" false
    (Corpus.Cve.applies_to old_cve newest.tree);
  let new_cve = Option.get (Corpus.Cve.find "CVE-2008-0600") in
  match Corpus.Versions.hot_patch new_cve newest with
  | None -> Alcotest.fail "2008 CVE should apply to the newest release"
  | Some patch -> (
    match
      Create.create
        { source = newest.tree; patch; update_id = new_cve.id;
          description = "" }
    with
    | Error e -> Alcotest.failf "create: %a" Create.pp_error e
    | Ok { update; _ } -> (
      let b = Corpus.Boot.boot ~tree:newest.tree () in
      let mgr = Apply.init b.machine in
      match Apply.apply mgr update with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "apply on release: %a" Apply.pp_error e))

let suite =
  [
    ( "corpus",
      [
        t "kernel boots" test_boot;
        t "syscall bounds" test_syscall_bounds;
        t "corpus size and shape" test_corpus_size;
        t "all fixed trees compile" test_all_fixed_trees_compile;
        t "all patches create updates" test_all_patches_create;
        t "data gate without custom code" test_data_gate_without_custom;
        t "exploits before/after" test_exploits_before_after;
        t "exploit returns after undo" test_exploit_returns_after_undo;
        t "stress on clean kernel" test_stress_clean;
        t "stress across update" test_stress_across_update;
        t "custom quota fixup" test_custom_quota_fixup;
        t "custom tz fixup" test_custom_tz_fixup;
        t "shadow struct field" test_shadow_struct_field;
        t "patch size distribution" test_patch_size_distribution;
        t "custom code lines" test_custom_code_lines;
        t "cross-version rejection" test_cross_version_rejection;
        t "release line" test_release_line;
        t "release patch applies" test_release_patch_applies;
        Alcotest.test_case "full 64-CVE sweep" `Slow test_full_sweep;
      ] );
  ]
