(* The per-thread consistency model: dispatch routing, safe-point
   migration, pauseless convergence under load, the reverse transition,
   the forced-straggler fallback, and byte-identical rollback of a
   failed mid-transition apply. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Image = Klink.Image
module Machine = Kernel.Machine
module Create = Ksplice.Create
module Apply = Ksplice.Apply
module Transition = Manager.Transition

let t name f = Alcotest.test_case name `Quick f

let replace old_s new_s s =
  let rec find i =
    if i + String.length old_s > String.length s then
      Alcotest.failf "pattern %S not found" old_s
    else if String.sub s i (String.length old_s) = old_s then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ new_s
  ^ String.sub s (i + String.length old_s)
      (String.length s - i - String.length old_s)

(* [spin] burns scheduler time without ever touching [fare]: a busy
   thread that stays migratable and keeps the clock honest (no
   time-teleport while a straggler sleeps) *)
let base_src =
  {|
int fares = 7;
int fare(int z) {
  int acc = 0;
  int i;
  for (i = 0; i < z; i = i + 1)
    acc = acc + fares;
  return acc;
}
int churn(int n) {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1)
    acc = acc + fare(3);
  return acc;
}
int spin(int n) {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1)
    acc = acc + i;
  return acc;
}
|}

let boot src =
  let tree = Tree.of_list [ ("k/t.c", src) ] in
  let build = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree in
  let img = Image.link_exn ~base:0x100000 (Kbuild.objects build) in
  (tree, img, Machine.create img)

let call m img name args =
  let sym = Option.get (Image.lookup_global img name) in
  match Machine.call_function m ~addr:sym.addr ~args with
  | Ok v -> v
  | Error f -> Alcotest.failf "%s faulted: %a" name Machine.pp_fault f

let mk_update ~id tree tree' =
  match
    Create.create
      { source = tree; patch = Diff.diff_trees tree tree'; update_id = id;
        description = id }
  with
  | Ok c -> c.Create.update
  | Error e -> Alcotest.failf "create: %a" Create.pp_error e

let patched_fare tree =
  Tree.add tree "k/t.c"
    (replace "acc = acc + fares;" "acc = acc + fares + 1;"
       (Option.get (Tree.find tree "k/t.c")))

let entry_of img name = (Option.get (Image.lookup_global img name)).addr

let apply_ok ?engage mgr u =
  match Apply.apply mgr ?engage u with
  | Ok a -> a
  | Error e -> Alcotest.failf "apply: %a" Apply.pp_error e

let drive m =
  (* run until every spawned thread is done *)
  let budget = ref 200 in
  while
    !budget > 0
    && List.exists
         (fun (th : Machine.thread) ->
           match th.state with
           | Machine.Runnable | Machine.Sleeping _ -> true
           | _ -> false)
         (Machine.threads m)
  do
    decr budget;
    if Machine.run m ~steps:20_000 = 0 then budget := 0
  done

(* --- dispatch stubs route by patch_state --- *)

let test_dispatch_routing () =
  let _, img, m = boot base_src in
  let fare = entry_of img "fare" in
  let spin = entry_of img "spin" in
  (* a transition routing fare -> spin for migrated threads; the
     synthetic call_function thread starts on the goal side, so the
     call lands in spin: spin(3) = 0+1+2 = 3, not fare(3) = 21 *)
  Machine.begin_transition m ~update:"u" ~route_migrated:true
    [ (fare, spin) ];
  Alcotest.(check int32) "migrated thread routed" 3l (call m img "fare" [ 3l ]);
  Machine.end_transition m;
  Alcotest.(check int32) "no transition, no routing" 21l
    (call m img "fare" [ 3l ]);
  (* reverse polarity: a migrated thread falls through to the entry *)
  Machine.begin_transition m ~update:"u" ~route_migrated:false
    [ (fare, spin) ];
  Alcotest.(check int32) "migrated thread falls through" 21l
    (call m img "fare" [ 3l ]);
  Machine.end_transition m;
  Alcotest.check_raises "double end rejected"
    (Invalid_argument "Machine.end_transition: no active transition")
    (fun () -> Machine.end_transition m)

(* --- at rest, the per-thread apply is byte-identical to stop_machine --- *)

let test_at_rest_identity () =
  let tree, img_a, ma = boot base_src in
  let _, img_b, mb = boot base_src in
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let mgra = Apply.init ma in
  let mgrb = Apply.init mb in
  let stats = ref None in
  ignore
    (apply_ok ~engage:(Transition.engage ~on_stats:(fun s -> stats := Some s) ())
       mgra u
      : Apply.applied);
  ignore (apply_ok mgrb u : Apply.applied);
  (* full cross-machine byte identity: at rest both engagements must
     produce exactly the same machine *)
  (match Machine.diff_snapshot ma (Machine.snapshot mb) with
   | [] -> ()
   | d ->
     Alcotest.failf "per-thread apply diverged from stop_machine:\n  %s"
       (String.concat "\n  " d));
  (match !stats with
   | Some s ->
     Alcotest.(check int) "no pause" 0 s.Transition.st_pause_ns;
     Alcotest.(check int) "no forced migration" 0 s.Transition.st_forced
   | None -> Alcotest.fail "engagement reported no stats");
  Alcotest.(check int32) "patched on A" 24l (call ma img_a "fare" [ 3l ]);
  Alcotest.(check int32) "patched on B" 24l (call mb img_b "fare" [ 3l ])

(* --- under load: convergence with zero pause, correct behaviour --- *)

let test_under_load_no_pause () =
  let tree, img, m = boot base_src in
  let churn = entry_of img "churn" in
  let workers =
    List.init 3 (fun i ->
        Machine.spawn m
          ~name:(Printf.sprintf "worker/%d" i)
          ~uid:1000 ~entry:churn ~args:[ 400l ])
  in
  ignore (Machine.run m ~steps:500 : int);
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let mgr = Apply.init m in
  let stats = ref None in
  ignore
    (apply_ok ~engage:(Transition.engage ~on_stats:(fun s -> stats := Some s) ())
       mgr u
      : Apply.applied);
  let s = Option.get !stats in
  Alcotest.(check int) "no pause under load" 0 s.Transition.st_pause_ns;
  Alcotest.(check bool) "no fallback" false s.Transition.st_fallback;
  Alcotest.(check bool) "every live worker migrated at a safe point" true
    (List.for_all
       (fun (th : Machine.thread) ->
         List.exists
           (fun (mg : Transition.migration) -> mg.mg_tid = th.tid)
           s.Transition.st_migrations)
       workers);
  Alcotest.(check bool) "scheduler actually ran mid-transition" true
    (s.Transition.st_sched_steps > 0);
  drive m;
  List.iter
    (fun (th : Machine.thread) ->
      match th.state with
      | Machine.Exited _ -> ()
      | _ -> Alcotest.failf "worker %d did not finish cleanly" th.tid)
    workers;
  Alcotest.(check int32) "patched behaviour" 24l (call m img "fare" [ 3l ]);
  Alcotest.(check bool) "transition dismantled" true
    (Machine.transition_update m = None)

(* --- the reverse transition: undo under load --- *)

let test_reverse_transition_under_load () =
  let tree, img, m = boot base_src in
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let mgr = Apply.init m in
  let fare = entry_of img "fare" in
  let pre_bytes = Machine.read_bytes m fare 5 in
  ignore (apply_ok mgr u : Apply.applied);
  Alcotest.(check int32) "patched" 24l (call m img "fare" [ 3l ]);
  let churn = entry_of img "churn" in
  let workers =
    List.init 3 (fun i ->
        Machine.spawn m
          ~name:(Printf.sprintf "worker/%d" i)
          ~uid:1000 ~entry:churn ~args:[ 400l ])
  in
  ignore (Machine.run m ~steps:500 : int);
  let stats = ref None in
  (match
     Apply.undo mgr
       ~engage:(Transition.engage ~on_stats:(fun s -> stats := Some s) ())
       "fare"
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "reverse transition: %a" Apply.pp_error e);
  let s = Option.get !stats in
  Alcotest.(check int) "reverse transition never paused" 0
    s.Transition.st_pause_ns;
  Alcotest.(check bool) "undo direction recorded" true
    (s.Transition.st_direction = `Undo);
  Alcotest.(check bytes) "entry bytes restored" pre_bytes
    (Machine.read_bytes m fare 5);
  drive m;
  List.iter
    (fun (th : Machine.thread) ->
      match th.state with
      | Machine.Exited _ -> ()
      | _ -> Alcotest.failf "worker %d did not finish cleanly" th.tid)
    workers;
  Alcotest.(check int32) "old behaviour restored" 21l
    (call m img "fare" [ 3l ])

(* --- a straggler demotes the engagement to the bounded fallback --- *)

let test_forced_straggler_fallback () =
  let straggler_apply () =
    let tree, img, m = boot base_src in
    let spinner =
      Machine.spawn m ~name:"spinner" ~uid:1000
        ~entry:(entry_of img "spin") ~args:[ 2_000_000l ]
    in
    ignore (spinner : Machine.thread);
    (* parked asleep at fare's entry: pc inside the guard range, immune
       to safe points until it wakes — long after the budget below *)
    let straggler =
      Machine.spawn m ~name:"straggler" ~uid:1000
        ~entry:(entry_of img "fare") ~args:[ 1l ]
    in
    straggler.Machine.state <- Machine.Sleeping (Machine.tick m + 3_000);
    let u = mk_update ~id:"fare" tree (patched_fare tree) in
    let mgr = Apply.init m in
    let stats = ref None in
    let eng =
      Transition.engage
        ~policy:{ Transition.default_policy with budget = 2_000 }
        ~on_stats:(fun s -> stats := Some s)
        ()
    in
    ignore (apply_ok ~engage:eng mgr u : Apply.applied);
    (Option.get !stats, straggler, mgr, img, m)
  in
  let s, straggler, mgr, img, m = straggler_apply () in
  Alcotest.(check bool) "fallback engaged" true s.Transition.st_fallback;
  Alcotest.(check bool) "straggler was force-migrated" true
    (List.exists
       (fun (mg : Transition.migration) ->
         mg.mg_tid = straggler.Machine.tid
         && mg.mg_class = Transition.Forced)
       s.Transition.st_migrations);
  Alcotest.(check bool) "fallback pause is the stop_machine cost" true
    (s.Transition.st_pause_ns > 0);
  (* byte identity against a stop_machine twin: the fallback must land
     exactly what the paper's engagement lands *)
  let tree_b, _, mb = boot base_src in
  let mgrb = Apply.init mb in
  ignore
    (apply_ok mgrb (mk_update ~id:"fare" tree_b (patched_fare tree_b))
      : Apply.applied);
  Alcotest.(check string) "footprint identical to stop_machine"
    (Apply.footprint mgrb) (Apply.footprint mgr);
  (* the straggler ran the OLD code to completion: per-thread
     consistency let it finish its in-flight call *)
  drive m;
  (match straggler.Machine.state with
   | Machine.Exited v -> Alcotest.(check int32) "old fare(1)" 7l v
   | _ -> Alcotest.fail "straggler never finished");
  Alcotest.(check int32) "patched afterwards" 24l (call m img "fare" [ 3l ])

(* --- a mid-transition failure rolls back byte-identically --- *)

let test_mid_transition_rollback () =
  let tree, img, m = boot base_src in
  (* a churner that never leaves fare: the fallback cannot quiesce *)
  ignore
    (Machine.spawn m ~name:"churner" ~uid:0 ~entry:(entry_of img "fare")
       ~args:[ 100000000l ]
      : Machine.thread);
  ignore (Machine.run m ~steps:50 : int);
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let mgr = Apply.init m in
  let snap = Machine.snapshot m in
  let eng =
    Transition.engage
      ~policy:
        { Transition.default_policy with
          budget = 1_000; fb_max_attempts = 3; fb_retry_base = 50;
          fb_retry_cap = 200; fb_retry_budget = 1_000 }
      ()
  in
  (match Apply.apply mgr ~engage:eng u with
   | Ok _ -> Alcotest.fail "expected the transition to fail"
   | Error (Apply.Not_quiescent nq) ->
     Alcotest.(check bool) "diagnostics name the churner" true
       (List.exists
          (fun (who, _) ->
            let n = String.length "churner" in
            let rec go i =
              i + n <= String.length who
              && (String.sub who i n = "churner" || go (i + 1))
            in
            go 0)
          nq.Apply.nq_blockers)
   | Error e -> Alcotest.failf "unexpected error: %a" Apply.pp_error e);
  Alcotest.(check bool) "transition dismantled after failure" true
    (Machine.transition_update m = None);
  (match Machine.diff_snapshot m snap with
   | [] -> ()
   | d ->
     Alcotest.failf "mid-transition abort left the machine diverged:\n  %s"
       (String.concat "\n  " d));
  Alcotest.(check int32) "old behaviour intact" 21l (call m img "fare" [ 3l ])

(* --- while a transition is in flight, other pipelines are refused --- *)

let test_transition_excludes_other_applies () =
  let tree, img, m = boot base_src in
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let mgr = Apply.init m in
  Machine.begin_transition m ~update:"other" ~route_migrated:true
    [ (entry_of img "fare", entry_of img "spin") ];
  (match Apply.apply mgr u with
   | Error (Apply.Integrity _) -> ()
   | Ok _ -> Alcotest.fail "apply accepted during a foreign transition"
   | Error e -> Alcotest.failf "unexpected error: %a" Apply.pp_error e);
  Machine.end_transition m;
  ignore (apply_ok mgr u : Apply.applied);
  Machine.begin_transition m ~update:"other" ~route_migrated:true [];
  (match Apply.undo mgr "fare" with
   | Error (Apply.Integrity _) -> ()
   | Ok () -> Alcotest.fail "undo accepted during a foreign transition"
   | Error e -> Alcotest.failf "unexpected error: %a" Apply.pp_error e);
  Machine.end_transition m;
  match Apply.undo mgr "fare" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "clean undo: %a" Apply.pp_error e

(* --- qcheck: at rest, per-thread apply+undo === stop_machine, for a
   spread of corpus CVEs and machine histories --- *)

let prop_cves =
  [ "CVE-2006-2451"; "CVE-2005-3110"; "CVE-2005-2709"; "CVE-2008-0007";
    "CVE-2007-3851" ]

let corpus_updates =
  lazy
    (let base = Corpus.Base_kernel.tree () in
     let cache = Hashtbl.create 8 in
     fun (cve : Corpus.Cve.t) ->
       match Hashtbl.find_opt cache cve.id with
       | Some u -> u
       | None ->
         let u =
           match
             Create.create
               { source = base; patch = Corpus.Cve.hot_patch cve base;
                 update_id = cve.id; description = cve.desc }
           with
           | Ok c -> c.Create.update
           | Error e ->
             Alcotest.failf "%s: create: %a" cve.id Create.pp_error e
         in
         Hashtbl.add cache cve.id u;
         u)

let prop_at_rest_identity =
  let open QCheck2 in
  let gen = Gen.pair (Gen.oneofl prop_cves) (Gen.int_range 0 3) in
  let print (id, k) = Printf.sprintf "%s after %d syscalls" id k in
  Test.make
    ~name:"per-thread apply+undo is byte-identical to stop_machine"
    ~count:10 ~print gen
    (fun (cve_id, k) ->
      let update_of = Lazy.force corpus_updates in
      let cve = Option.get (Corpus.Cve.find cve_id) in
      let update = update_of cve in
      let ba = Corpus.Boot.boot () in
      let bb = Corpus.Boot.boot () in
      (* identical machine histories before the apply *)
      List.iter
        (fun (b : Corpus.Boot.booted) ->
          for i = 1 to k do
            ignore (Corpus.Boot.syscall b ~uid:1000 0 [ Int32.of_int i ])
          done)
        [ ba; bb ];
      let mgra = Apply.init ba.Corpus.Boot.machine in
      let mgrb = Apply.init bb.Corpus.Boot.machine in
      let identical what =
        match
          Machine.diff_snapshot ba.Corpus.Boot.machine
            (Machine.snapshot bb.Corpus.Boot.machine)
        with
        | [] -> true
        | d ->
          Test.fail_reportf "%s: machines diverged:\n%s" what
            (String.concat "\n" d)
      in
      let engage = Transition.engage () in
      (match Apply.apply mgra ~engage update with
       | Ok _ -> ()
       | Error e ->
         Test.fail_reportf "per-thread apply: %a" Apply.pp_error e);
      (match Apply.apply mgrb update with
       | Ok _ -> ()
       | Error e -> Test.fail_reportf "baseline apply: %a" Apply.pp_error e);
      identical "after apply"
      &&
      ((match Apply.undo mgra ~engage cve.id with
        | Ok () -> ()
        | Error e ->
          Test.fail_reportf "per-thread undo: %a" Apply.pp_error e);
       (match Apply.undo mgrb cve.id with
        | Ok () -> ()
        | Error e -> Test.fail_reportf "baseline undo: %a" Apply.pp_error e);
       identical "after undo"))

let suite =
  [
    ( "transition",
      [
        t "dispatch stubs route by patch_state" test_dispatch_routing;
        t "at rest: byte-identical to stop_machine" test_at_rest_identity;
        t "under load: zero pause, all safe-point migrations"
          test_under_load_no_pause;
        t "reverse transition under load" test_reverse_transition_under_load;
        t "forced straggler converges through the fallback"
          test_forced_straggler_fallback;
        t "mid-transition failure rolls back byte-identically"
          test_mid_transition_rollback;
        t "in-flight transition excludes other pipelines"
          test_transition_excludes_other_applies;
        QCheck_alcotest.to_alcotest prop_at_rest_identity;
      ] );
  ]
