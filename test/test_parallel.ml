(* Tests for the domain pool and the perf machinery riding on it:
   map/List.map equivalence, deterministic error propagation, nested
   maps, parallel-vs-sequential build determinism, the bounded compile
   cache, and the incremental kallsyms name index. *)

module Tree = Patchfmt.Source_tree
module Image = Klink.Image
module Machine = Kernel.Machine

let t name f = Alcotest.test_case name `Quick f
let q = QCheck_alcotest.to_alcotest

(* --- map semantics --- *)

let test_map_matches_list_map () =
  List.iter
    (fun n ->
      let xs = List.init n (fun i -> i) in
      let f x = (x * 7) mod 13 in
      Alcotest.(check (list int))
        (Printf.sprintf "n=%d" n)
        (List.map f xs)
        (Parallel.map ~domains:4 f xs))
    [ 0; 1; 2; 3; 17; 100; 1000 ]

let prop_map_equiv =
  QCheck2.Test.make ~name:"Parallel.map == List.map" ~count:100
    QCheck2.Gen.(pair (int_range 1 6) (list small_int))
    (fun (d, xs) ->
      Parallel.map ~domains:d (fun x -> (x * x) + 1) xs
      = List.map (fun x -> (x * x) + 1) xs)

exception Boom of int

let test_error_smallest_index () =
  (* several indices fail; whichever chunk a worker runs first, the
     caller must always see the smallest failing index *)
  let xs = List.init 64 (fun i -> i) in
  match
    Parallel.map ~domains:4 ~chunk:1
      (fun i -> if i >= 3 then raise (Boom i) else i)
      xs
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "smallest failing index" 3 i

let test_nested_map () =
  (* map inside map: waiting batches help drain the queue, so the fixed
     pool cannot deadlock on nesting *)
  let outer = List.init 8 (fun i -> i) in
  let expect = List.map (fun i -> List.init 8 (fun j -> (i * 8) + j)) outer in
  Alcotest.(check (list (list int)))
    "nested" expect
    (Parallel.map ~domains:2
       (fun i ->
         Parallel.map ~domains:2
           (fun j -> (i * 8) + j)
           (List.init 8 (fun j -> j)))
       outer)

(* --- parallel build determinism --- *)

let big_tree =
  Tree.of_list
    (List.init 24 (fun i ->
         ( Printf.sprintf "kernel/u%02d.c" i,
           Printf.sprintf
             "int v%d = %d;\n\
              int f%d(int p) {\n\
             \  int a = p + v%d;\n\
             \  int j;\n\
             \  for (j = 0; j < %d; j = j + 1)\n\
             \    a = a + j;\n\
             \  return a;\n\
              }\n"
             i i i i (i + 2) )))

let test_parallel_build_identical () =
  let outcome ~domains =
    Kbuild.reset_cache ();
    let b =
      Kbuild.build_tree_exn ~domains ~options:Minic.Driver.pre_build big_tree
    in
    ( List.map
        (fun o -> Bytes.to_string (Objfile.to_bytes o))
        (Kbuild.objects b),
      Kbuild.inlined_callees b )
  in
  let seq = outcome ~domains:1 in
  let par = outcome ~domains:4 in
  Kbuild.reset_cache ();
  Alcotest.(check bool)
    "byte-identical objects and inline decisions" true (seq = par)

let test_cache_lru_bound () =
  let saved = (Kbuild.cache_stats ()).capacity in
  Kbuild.reset_cache ();
  Kbuild.set_cache_capacity 8;
  for i = 0 to 19 do
    let tree =
      Tree.of_list
        [
          ( Printf.sprintf "c%02d.c" i,
            Printf.sprintf "int g%d = %d;\nint h%d() { return g%d; }\n" i i i i
          );
        ]
    in
    ignore (Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree : Kbuild.build)
  done;
  let s = Kbuild.cache_stats () in
  Kbuild.set_cache_capacity saved;
  Kbuild.reset_cache ();
  Alcotest.(check bool) "entries bounded by capacity" true (s.entries <= 8);
  Alcotest.(check bool) "evictions counted" true (s.evictions > 0)

(* --- kallsyms name index --- *)

let tiny_machine () =
  let tree =
    Tree.of_list
      [ ("kernel/t.c", "int tv = 1;\nint tf(int p) { return p + tv; }\n") ]
  in
  let b = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree in
  Machine.create (Image.link_exn ~base:0x100000 (Kbuild.objects b))

let mk_sym name addr : Image.syminfo =
  {
    name;
    addr;
    size = 4;
    binding = Objfile.Symbol.Global;
    kind = `Func;
    unit_name = "q.c";
  }

let prop_index_agrees =
  (* after a random interleaving of add_kallsyms/remove_kallsyms, the
     index answers exactly like a fresh linear scan, in kallsyms order *)
  QCheck2.Test.make ~name:"kallsyms index == linear scan" ~count:60
    QCheck2.Gen.(list (pair (int_range 0 5) bool))
    (fun ops ->
      let m = tiny_machine () in
      let name i = Printf.sprintf "qsym_%d" i in
      List.iteri
        (fun step (i, add) ->
          if add then
            Machine.add_kallsyms m [ mk_sym (name i) (0x400000 + (step * 16)) ]
          else Machine.remove_kallsyms m (fun s -> s.Image.name = name i))
        ops;
      let agree n =
        Machine.lookup_name m n
        = List.filter
            (fun (s : Image.syminfo) -> s.name = n)
            (Machine.kallsyms m)
      in
      List.for_all agree (List.init 6 (fun i -> name i))
      && agree "tf" && agree "no_such_symbol")

let suite =
  [
    ( "parallel",
      [
        t "map matches List.map" test_map_matches_list_map;
        q prop_map_equiv;
        t "error at smallest index" test_error_smallest_index;
        t "nested map" test_nested_map;
        t "parallel build identical to sequential" test_parallel_build_identical;
        t "compile cache LRU bound" test_cache_lru_bound;
        q prop_index_agrees;
      ] );
  ]
