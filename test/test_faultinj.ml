(* Transactional apply and fault injection: any injected fault at any
   pipeline step must roll the machine back byte-identically, undo must
   restore the image byte-identically, and the quiescence loop must use
   bounded backoff with useful diagnostics. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Image = Klink.Image
module Machine = Kernel.Machine
module Create = Ksplice.Create
module Apply = Ksplice.Apply
module Txn = Ksplice.Txn
module Faultinj = Ksplice.Faultinj

let t name f = Alcotest.test_case name `Quick f

let replace old_s new_s s =
  let rec find i =
    if i + String.length old_s > String.length s then
      Alcotest.failf "pattern %S not found" old_s
    else if String.sub s i (String.length old_s) = old_s then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ new_s
  ^ String.sub s (i + String.length old_s)
      (String.length s - i - String.length old_s)

let base_src =
  {|
int fares = 7;
int fare(int z) {
  int acc = 0;
  int i;
  for (i = 0; i < z; i = i + 1)
    acc = acc + fares;
  return acc;
}
int churn(int n) {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1)
    acc = acc + fare(3);
  return acc;
}
|}

let boot src =
  let tree = Tree.of_list [ ("k/t.c", src) ] in
  let build = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree in
  let img = Image.link_exn ~base:0x100000 (Kbuild.objects build) in
  (tree, img, Machine.create img)

let call m img name args =
  let sym = Option.get (Image.lookup_global img name) in
  match Machine.call_function m ~addr:sym.addr ~args with
  | Ok v -> v
  | Error f -> Alcotest.failf "%s faulted: %a" name Machine.pp_fault f

let mk_update ~id tree tree' =
  match
    Create.create
      { source = tree; patch = Diff.diff_trees tree tree'; update_id = id;
        description = id }
  with
  | Ok c -> c.update
  | Error e -> Alcotest.failf "create: %a" Create.pp_error e

let patched_fare tree =
  Tree.add tree "k/t.c"
    (replace "acc = acc + fares;" "acc = acc + fares + 1;"
       (Option.get (Tree.find tree "k/t.c")))

let contains ~needle hay =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let check_identical what m snap =
  match Machine.diff_snapshot m snap with
  | [] -> ()
  | diffs ->
    Alcotest.failf "%s: machine diverged from snapshot:\n  %s" what
      (String.concat "\n  " diffs)

(* --- alcotest cases --- *)

let test_undo_restores_bytes () =
  (* satellite 4: ksplice-undo replays the committed journal and the
     kernel image is byte-identical to its pre-apply state *)
  let tree, img, m = boot base_src in
  Alcotest.(check int32) "before" 21l (call m img "fare" [ 3l ]);
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let mgr = Apply.init m in
  let snap = Machine.snapshot m in
  (match Apply.apply mgr u with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "apply: %a" Apply.pp_error e);
  Alcotest.(check int32) "patched" 24l (call m img "fare" [ 3l ]);
  (* the patched call above ran VM code, which moves thread bookkeeping;
     re-snapshot just the undo half on a quiet machine *)
  let tree2, img2, m2 = boot base_src in
  let u2 = mk_update ~id:"fare2" tree2 (patched_fare tree2) in
  let mgr2 = Apply.init m2 in
  let snap2 = Machine.snapshot m2 in
  (match Apply.apply mgr2 u2 with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "apply: %a" Apply.pp_error e);
  (match Apply.undo mgr2 "fare2" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "undo: %a" Apply.pp_error e);
  check_identical "apply then undo" m2 snap2;
  Alcotest.(check int32) "behaviour restored" 21l (call m2 img2 "fare" [ 3l ]);
  (* and the first machine still undoes correctly even after use *)
  (match Apply.undo mgr "fare" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "undo: %a" Apply.pp_error e);
  ignore snap;
  Alcotest.(check int32) "behaviour restored on used machine" 21l
    (call m img "fare" [ 3l ])

let test_backoff_reports_blockers () =
  (* satellite 2: bounded exponential backoff with attempt count and
     blocking-thread backtraces in the error *)
  let tree, img, m = boot base_src in
  (* park a thread inside fare itself: ~100M loop iterations, so every
     quiescence attempt deterministically finds it there *)
  let entry = (Option.get (Image.lookup_global img "fare")).addr in
  ignore (Machine.spawn m ~name:"churner" ~uid:0 ~entry ~args:[ 100000000l ]);
  ignore (Machine.run m ~steps:50 : int);
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let mgr = Apply.init m in
  let snap = Machine.snapshot m in
  match Apply.apply mgr ~max_attempts:6 ~retry_base:50 ~retry_cap:400 u with
  | Ok _ -> Alcotest.fail "expected Not_quiescent"
  | Error (Apply.Not_quiescent nq) ->
    Alcotest.(check int) "all attempts used" 6 nq.nq_attempts;
    Alcotest.(check bool) "backoff consumed scheduler steps" true
      (nq.nq_steps_run > 0);
    Alcotest.(check bool) "names the patched function" true
      (List.exists
         (fun f -> fst (Ksplice.Update.split_canonical f) = "fare")
         nq.nq_functions);
    (* the parked thread executes inside fare: it must be named as the
       blocker, with a backtrace *)
    Alcotest.(check bool) "identifies the churner thread" true
      (List.exists
         (fun (who, bt) ->
           contains ~needle:"churner" who && bt <> [])
         nq.nq_blockers);
    check_identical "rollback after quiescence failure" m snap
  | Error e -> Alcotest.failf "unexpected error: %a" Apply.pp_error e

let test_budget_caps_attempts () =
  (* the step budget stops retries even when attempts remain *)
  let tree, img, m = boot base_src in
  let entry = (Option.get (Image.lookup_global img "fare")).addr in
  ignore (Machine.spawn m ~name:"churner" ~uid:0 ~entry ~args:[ 100000000l ]);
  ignore (Machine.run m ~steps:50 : int);
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let mgr = Apply.init m in
  match
    Apply.apply mgr ~max_attempts:100 ~retry_base:64 ~retry_cap:1024
      ~retry_budget:2000 u
  with
  | Ok _ -> Alcotest.fail "expected Not_quiescent"
  | Error (Apply.Not_quiescent nq) ->
    Alcotest.(check bool) "budget exhausted before attempts" true
      (nq.nq_attempts < 100);
    Alcotest.(check bool) "steps within budget" true (nq.nq_steps_run <= 2000)
  | Error e -> Alcotest.failf "unexpected error: %a" Apply.pp_error e

let fault_case ~step ~expect_err () =
  let tree, img, m = boot base_src in
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let mgr = Apply.init m in
  let snap = Machine.snapshot m in
  let session =
    Faultinj.make m { step; kind = Faultinj.kind_for_step step; seed = 42 }
  in
  (match Apply.apply mgr ~inject:session u with
   | Ok _ -> Alcotest.fail "expected the injected fault to abort apply"
   | Error e ->
     Alcotest.(check bool)
       (Format.asprintf "error class for %s: %a" (Txn.step_name step)
          Apply.pp_error e)
       true (expect_err e));
  Alcotest.(check bool) "fault fired" true (Faultinj.fired session);
  check_identical
    ("rollback after fault at " ^ Txn.step_name step)
    m snap;
  Alcotest.(check int32) "old behaviour intact" 21l (call m img "fare" [ 3l ]);
  (* the machine must be reusable: a clean apply now succeeds *)
  (match Apply.apply mgr u with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "clean apply after fault: %a" Apply.pp_error e);
  Alcotest.(check int32) "patched after clean apply" 24l
    (call m img "fare" [ 3l ])

let test_oom_rolls_back =
  fault_case ~step:Txn.Allocate
    ~expect_err:(function Apply.Out_of_memory _ -> true | _ -> false)

let test_corrupt_reloc_detected =
  fault_case ~step:Txn.Relocate
    ~expect_err:(function Apply.Integrity _ -> true | _ -> false)

let test_hook_fault_at_commit_unwinds_trampolines () =
  (* the hardest rollback: post-apply hooks fault after the trampolines
     are live; rollback must lift them again *)
  let tree, img, m = boot base_src in
  let tree' =
    Tree.add tree "k/t.c"
      (replace "acc = acc + fares;" "acc = acc + fares + 1;"
         (Option.get (Tree.find tree "k/t.c"))
       ^ {|
int fare_fixup_ran = 0;
int fare_fixup() {
  fare_fixup_ran = 1;
  return 0;
}
ksplice_post_apply(fare_fixup);
|})
  in
  let u = mk_update ~id:"fare" tree tree' in
  let mgr = Apply.init m in
  let snap = Machine.snapshot m in
  let session =
    Faultinj.make m
      { step = Txn.Commit; kind = Faultinj.Hook_fault; seed = 7 }
  in
  (match Apply.apply mgr ~inject:session u with
   | Ok _ -> Alcotest.fail "expected the post-apply hook fault to abort"
   | Error (Apply.Hook_fault _) -> ()
   | Error e -> Alcotest.failf "unexpected error: %a" Apply.pp_error e);
  Alcotest.(check bool) "fault fired" true (Faultinj.fired session);
  check_identical "rollback after commit-step hook fault" m snap;
  Alcotest.(check int32) "trampoline lifted: old behaviour" 21l
    (call m img "fare" [ 3l ]);
  (match Apply.apply mgr u with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "clean apply: %a" Apply.pp_error e);
  Alcotest.(check int32) "patched" 24l (call m img "fare" [ 3l ])

let test_txn_double_close_raises () =
  (* closing a transaction twice is a programming error and must fail
     loudly, not silently corrupt the journal *)
  let _, _, m = boot base_src in
  let txn = Txn.begin_ m in
  Txn.discard txn;
  let expect_closed f =
    Alcotest.check_raises "second close rejected"
      (Invalid_argument "Txn: transaction already closed") (fun () -> f ())
  in
  expect_closed (fun () -> Txn.rollback txn);
  expect_closed (fun () -> ignore (Txn.commit txn : Txn.journal));
  expect_closed (fun () -> Txn.discard txn);
  (* the machine is untouched and a fresh transaction still works *)
  let txn2 = Txn.begin_ m in
  Txn.rollback txn2

let test_stacked_undo_hook_fault_leaves_both_applied () =
  (* two stacked updates; undoing the topmost fails in its reverse hook.
     The undo transaction must put the journal bytes back, leaving BOTH
     updates applied and the kernel byte-identical to pre-undo. *)
  let tree, img, m = boot base_src in
  let tree_a = patched_fare tree in
  let tree_b =
    Tree.add tree_a "k/t.c"
      (replace "acc = acc + fare(3);" "acc = acc + fare(3) + 1;"
         (Option.get (Tree.find tree_a "k/t.c"))
       ^ {|
int churn_unfix_ran = 0;
int churn_unfix() {
  churn_unfix_ran = 1;
  return 0;
}
ksplice_reverse(churn_unfix);
|})
  in
  let ua = mk_update ~id:"fareA" tree tree_a in
  let ub = mk_update ~id:"churnB" tree_a tree_b in
  let mgr = Apply.init m in
  (match Apply.apply mgr ua with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "apply A: %a" Apply.pp_error e);
  (match Apply.apply mgr ub with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "apply B: %a" Apply.pp_error e);
  Alcotest.(check int32) "both patches live" 25l (call m img "churn" [ 1l ]);
  let snap = Machine.snapshot m in
  (* fault every hook call: the reverse hook of B cannot run *)
  Machine.set_call_injector m (Some (fun pc -> Some (Machine.Memory_violation pc)));
  (match Apply.undo mgr "churnB" with
   | Ok () -> Alcotest.fail "expected the reverse hook fault to abort undo"
   | Error (Apply.Hook_fault _) -> ()
   | Error e -> Alcotest.failf "unexpected error: %a" Apply.pp_error e);
  Machine.set_call_injector m None;
  check_identical "failed undo rolled back" m snap;
  Alcotest.(check (list string)) "both updates still applied"
    [ "churnB"; "fareA" ]
    (List.map
       (fun (a : Apply.applied) -> a.update.Ksplice.Update.update_id)
       (Apply.applied mgr));
  Alcotest.(check int32) "patched behaviour intact" 25l
    (call m img "churn" [ 1l ]);
  (* with the injector gone the stack unwinds cleanly *)
  (match Apply.undo mgr "churnB" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "clean undo B: %a" Apply.pp_error e);
  (match Apply.undo mgr "fareA" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "clean undo A: %a" Apply.pp_error e);
  Alcotest.(check int32) "base behaviour restored" 21l
    (call m img "churn" [ 1l ])

(* --- the qcheck property (satellite 3): random CVE x step x seed --- *)

(* updates are machine-independent, so they are built once and cached;
   each property case boots a fresh machine (cheap, ~ms) so that one
   case's scheduler progress cannot bleed into the next *)
let corpus_updates =
  lazy
    (let base = Corpus.Base_kernel.tree () in
     let cache = Hashtbl.create 8 in
     fun (cve : Corpus.Cve.t) ->
       match Hashtbl.find_opt cache cve.id with
       | Some u -> u
       | None ->
         let u =
           match
             Create.create
               { source = base; patch = Corpus.Cve.hot_patch cve base;
                 update_id = cve.id; description = cve.desc }
           with
           | Ok c -> c.Create.update
           | Error e ->
             Alcotest.failf "%s: create: %a" cve.id Create.pp_error e
         in
         Hashtbl.add cache cve.id u;
         u)

(* a spread of corpus CVEs: plain, custom-code with apply hooks, custom
   with post-apply hooks, exploit-bearing *)
let prop_cves =
  [ "CVE-2006-2451"; "CVE-2005-3110"; "CVE-2005-2709"; "CVE-2008-0007";
    "CVE-2007-3851" ]

let prop_fault_rollback =
  let open QCheck2 in
  let gen =
    Gen.triple
      (Gen.oneofl prop_cves)
      (Gen.oneofl Txn.all_steps)
      (Gen.int_range 0 4095)
  in
  let print (id, step, seed) =
    Printf.sprintf "%s @ %s, seed %d" id (Txn.step_name step) seed
  in
  Test.make ~name:"faulted apply rolls back byte-identically" ~count:20
    ~print gen
    (fun (cve_id, step, seed) ->
      let update_of = Lazy.force corpus_updates in
      let b = Corpus.Boot.boot () in
      let mgr = Apply.init b.machine in
      let m = b.Corpus.Boot.machine in
      let cve = Option.get (Corpus.Cve.find cve_id) in
      let update = update_of cve in
      let snap = Machine.snapshot m in
      let session =
        Faultinj.make m { step; kind = Faultinj.kind_for_step step; seed }
      in
      let result = Apply.apply mgr ~inject:session update in
      Faultinj.disarm session;
      let fired = Faultinj.fired session in
      let clean_undo () =
        match Apply.undo mgr cve.id with
        | Ok () -> true
        | Error e ->
          Test.fail_reportf "undo failed: %a" Apply.pp_error e
      in
      match result with
      | Error e ->
        (* the fault must have fired, the machine must be byte-identical,
           and a subsequent clean apply must succeed *)
        (match Machine.diff_snapshot m snap with
         | [] -> ()
         | d ->
           Test.fail_reportf "diverged after %a:\n%s" Apply.pp_error e
             (String.concat "\n" d));
        fired
        && (match Apply.apply mgr update with
            | Ok _ -> clean_undo ()
            | Error e ->
              Test.fail_reportf "clean apply failed: %a" Apply.pp_error e)
      | Ok _ ->
        (* benign or never-fired: verify, then undo for the next case *)
        (not (fired && Faultinj.expect_abort (Faultinj.kind_for_step step)))
        && (match Apply.verify mgr with
            | Ok () -> true
            | Error e ->
              Test.fail_reportf "verify: %a" Apply.pp_error e)
        && clean_undo ())

let suite =
  [
    ( "faultinj",
      [
        t "undo restores bytes identically" test_undo_restores_bytes;
        t "backoff reports attempts and blockers"
          test_backoff_reports_blockers;
        t "retry budget caps backoff" test_budget_caps_attempts;
        t "oom at allocate rolls back" test_oom_rolls_back;
        t "corrupt relocation detected and rolled back"
          test_corrupt_reloc_detected;
        t "hook fault at commit unwinds live trampolines"
          test_hook_fault_at_commit_unwinds_trampolines;
        t "double close raises" test_txn_double_close_raises;
        t "stacked undo hook fault leaves both applied"
          test_stacked_undo_hook_fault_leaves_both_applied;
        QCheck_alcotest.to_alcotest prop_fault_rollback;
      ] );
  ]
