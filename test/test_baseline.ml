(* Tests for the source-level baseline evaluator: each §6.3 failure mode
   must be detected on a patch that triggers it, and a trivially safe
   patch must come back clean. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Baseline = Ksplice.Source_level

let t name f = Alcotest.test_case name `Quick f

let image_of tree =
  let build = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree in
  Klink.Image.link_exn ~base:0x100000 (Kbuild.objects build)

let evaluate tree tree' =
  match
    Baseline.evaluate ~source:tree
      ~patch:(Diff.diff_trees tree tree')
      ~image:(image_of tree)
  with
  | Ok v -> v
  | Error m -> Alcotest.failf "evaluate: %s" m

let has_failure pred (v : Baseline.verdict) = List.exists pred v.failures

let test_safe_patch () =
  let a =
    Tree.of_list
      [ ("k/a.c",
         "int limit_check(int v) {\n  int r = v;\n  r = r * 3;\n  r = r + v;\n  if (r > 99) { r = 99; }\n  return r;\n}\n") ]
  in
  let b =
    Tree.of_list
      [ ("k/a.c",
         "int limit_check(int v) {\n  int r = v;\n  r = r * 3;\n  r = r + v;\n  if (r > 90) { r = 90; }\n  return r;\n}\n") ]
  in
  let v = evaluate a b in
  Alcotest.(check (list string)) "replaces the function" [ "limit_check" ]
    v.replaced_from_source;
  Alcotest.(check int) "no failures" 0 (List.length v.failures)

let test_inline_missed () =
  let a =
    Tree.of_list
      [ ("k/a.c",
         "int lim() { return 8; }\nint use(int v) { if (v > lim()) { v = lim(); } return v; }\n") ]
  in
  let b =
    Tree.of_list
      [ ("k/a.c",
         "int lim() { return 4; }\nint use(int v) { if (v > lim()) { v = lim(); } return v; }\n") ]
  in
  let v = evaluate a b in
  Alcotest.(check bool) "inline sites missed" true
    (has_failure
       (function Baseline.Inline_sites_missed _ -> true | _ -> false)
       v);
  Alcotest.(check bool) "object changes missed" true
    (has_failure
       (function Baseline.Missed_object_changes _ -> true | _ -> false)
       v)

let test_ambiguous_symbol () =
  let mk n =
    Printf.sprintf
      "static int debug = %d;\nint probe%d(int v) {\n  int r = v + debug;\n  r = r * 2;\n  r = r - v;\n  if (r > 50) { r = 50; }\n  return r;\n}\n"
      n n
  in
  let a = Tree.of_list [ ("k/a.c", mk 1); ("k/b.c", mk 2) ] in
  let b =
    Tree.of_list
      [ ("k/a.c", mk 1);
        ( "k/b.c",
          Printf.sprintf
            "static int debug = %d;\nint probe%d(int v) {\n  int r = v + debug;\n  r = r * 2;\n  r = r - v;\n  if (r > 40) { r = 40; }\n  return r;\n}\n"
            2 2 ) ]
  in
  let v = evaluate a b in
  Alcotest.(check bool) "ambiguous detected" true
    (has_failure
       (function
         | Baseline.Ambiguous_symbol syms -> List.mem "debug" syms
         | _ -> false)
       v)

let test_static_local_lost () =
  let body extra =
    Printf.sprintf
      "int seq() {\n  static int n = 0;\n  n = n + 1;\n  return n%s;\n}\n"
      extra
  in
  let a = Tree.of_list [ ("k/a.c", body "") ] in
  let b = Tree.of_list [ ("k/a.c", body " + 100") ] in
  let v = evaluate a b in
  Alcotest.(check bool) "static local loss detected" true
    (has_failure
       (function
         | Baseline.Static_local_lost [ "seq" ] -> true
         | _ -> false)
       v)

let test_assembly_file () =
  let a =
    Tree.of_list [ ("k/e.s", ".text\n.global f\nf:\n  mov r0, 1\n  ret\n") ]
  in
  let b =
    Tree.of_list [ ("k/e.s", ".text\n.global f\nf:\n  mov r0, 2\n  ret\n") ]
  in
  let v = evaluate a b in
  Alcotest.(check bool) "assembly flagged" true
    (has_failure
       (function Baseline.Assembly_file "k/e.s" -> true | _ -> false)
       v)

let test_corpus_headline () =
  (* on the full corpus the baseline must be strictly weaker than Ksplice *)
  let base = Corpus.Base_kernel.tree () in
  let b = Corpus.Boot.boot () in
  let unsafe =
    List.filter
      (fun (cve : Corpus.Cve.t) ->
        match
          Baseline.evaluate ~source:base
            ~patch:(Corpus.Cve.hot_patch cve base)
            ~image:b.image
        with
        | Ok v -> v.failures <> []
        | Error m -> Alcotest.failf "%s: %s" cve.id m)
      Corpus.Cve.all
  in
  Alcotest.(check bool)
    (Printf.sprintf "many corpus patches are unsafe for the baseline (%d)"
       (List.length unsafe))
    true
    (List.length unsafe >= 20);
  (* the assembly CVE is among them *)
  Alcotest.(check bool) "assembly CVE flagged" true
    (List.exists (fun (c : Corpus.Cve.t) -> c.id = "CVE-2007-4573") unsafe)

let suite =
  [
    ( "baseline",
      [
        t "safe patch accepted" test_safe_patch;
        t "inline sites missed" test_inline_missed;
        t "ambiguous symbol" test_ambiguous_symbol;
        t "static local lost" test_static_local_lost;
        t "assembly file" test_assembly_file;
        t "corpus headline" test_corpus_headline;
      ] );
  ]
