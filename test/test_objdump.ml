(* Objdump tests: disassembly totality, relocation and jump-target
   annotations, resynchronisation on garbage, and hex dumps. *)

module Isa = Vmisa.Isa
module Section = Objfile.Section
module Reloc = Objfile.Reloc
module Objdump = Objfile.Objdump
module Frag = Asm.Frag

let t name f = Alcotest.test_case name `Quick f

let section_of emit =
  let frag = Frag.create () in
  emit frag;
  let img = Frag.assemble frag ~text:true in
  Section.make ~name:".text.t" ~kind:Section.Text ~align:4 img.data
    img.relocs

let test_disassemble_lines () =
  let s =
    section_of (fun f ->
        Frag.insn f (Isa.Push Isa.R6);
        Frag.insn f (Isa.Mov_ri (Isa.R0, 42l));
        Frag.insn f Isa.Ret)
  in
  let lines = Objdump.disassemble s in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  Alcotest.(check (list int)) "offsets" [ 0; 2; 8 ]
    (List.map (fun (l : Objdump.line) -> l.offset) lines);
  Alcotest.(check string) "mnemonic" "mov r0, 42"
    (List.nth lines 1).text

let test_jump_target_annotation () =
  let s =
    section_of (fun f ->
        Frag.label f "top";
        Frag.insn f (Isa.Addi (Isa.R0, 1l));
        Frag.jump f Isa.Cjmp "top")
  in
  let lines = Objdump.disassemble s in
  let jump = List.nth lines 1 in
  Alcotest.(check (option int)) "resolved target" (Some 0) jump.target

let test_reloc_annotation () =
  let s =
    section_of (fun f ->
        Frag.insn_reloc f (Isa.Mov_ri (Isa.R0, 0l)) Reloc.Abs32 "victim" 0l)
  in
  match Objdump.disassemble s with
  | [ l ] ->
    (match l.reloc with
     | Some r -> Alcotest.(check string) "reloc symbol" "victim" r.sym
     | None -> Alcotest.fail "missing reloc annotation");
    Alcotest.(check (option int)) "no local target for reloc'd insn" None
      l.target
  | _ -> Alcotest.fail "expected a single line"

let test_resync_on_garbage () =
  let data = Bytes.of_string "\xEE\x42" (* garbage byte then ret *) in
  let s = Section.make ~name:".text.g" ~kind:Section.Text ~align:4 data [] in
  match Objdump.disassemble s with
  | [ bad; ret ] ->
    Alcotest.(check string) "byte line" ".byte 0xee" bad.text;
    Alcotest.(check string) "resynchronised" "ret" ret.text
  | l -> Alcotest.failf "expected 2 lines, got %d" (List.length l)

let test_full_dump_renders () =
  let obj =
    (Minic.Driver.compile_exn ~options:Minic.Driver.pre_build ~unit_name:"d.c"
       "int v = 9;\nchar msg[4] = \"ok\";\nint get() { return v; }\n")
      .obj
  in
  let out = Format.asprintf "%a" Objdump.pp obj in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true
        (let rec find i =
           i + String.length needle <= String.length out
           && (String.sub out i (String.length needle) = needle
               || find (i + 1))
         in
         find 0))
    [ ".text.get"; ".data.v"; "symbols:"; "ret"; "ABS32" ]

let suite =
  [
    ( "objdump",
      [
        t "disassemble lines" test_disassemble_lines;
        t "jump target annotation" test_jump_target_annotation;
        t "reloc annotation" test_reloc_annotation;
        t "resync on garbage" test_resync_on_garbage;
        t "full dump renders" test_full_dump_renders;
      ] );
  ]
