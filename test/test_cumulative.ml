(* Atomic replace: a cumulative update supersedes the applied stack in
   one transaction. Unit tests for the stack semantics (collapse,
   footprint parity with the undo-then-apply twin, re-stacking on undo,
   the contiguous-top-segment integrity checks, byte-identical fault
   rollback) plus a shallow run of the corpus cumulative sweep, which
   also round-trips the shadow-variable extras (§5.3). *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Create = Ksplice.Create
module Apply = Ksplice.Apply
module Txn = Ksplice.Txn
module Faultinj = Ksplice.Faultinj
module Image = Klink.Image
module Machine = Kernel.Machine

let t name f = Alcotest.test_case name `Quick f

let base_tree =
  Tree.of_list
    [ ( "kernel/k.c",
        "int level = 1;\n\
         int probe(int x) {\n\
        \  int acc = 0;\n\
        \  int i;\n\
        \  for (i = 0; i < x; i = i + 1)\n\
        \    acc = acc + level;\n\
        \  return acc;\n\
         }\n" ) ]

let replace old_s new_s s =
  let rec find i =
    if i + String.length old_s > String.length s then
      Alcotest.failf "pattern %S not found" old_s
    else if String.sub s i (String.length old_s) = old_s then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ new_s
  ^ String.sub s (i + String.length old_s)
      (String.length s - i - String.length old_s)

let edit tree f =
  Tree.add tree "kernel/k.c" (f (Option.get (Tree.find tree "kernel/k.c")))

(* probe(4): base 4, tree1 8, tree2 12 *)
let tree1 =
  edit base_tree (replace "acc = acc + level;" "acc = acc + level + 1;")

let tree2 =
  edit tree1 (replace "acc = acc + level + 1;" "acc = acc + level + 2;")

let mk_update ?supersedes ~id ~from ~to_ () =
  match
    Create.create ?supersedes
      { source = from; patch = Diff.diff_trees from to_; update_id = id;
        description = id }
  with
  | Ok c -> c.update
  | Error e -> Alcotest.failf "create %s: %a" id Create.pp_error e

let u1 () = mk_update ~id:"hop-1" ~from:base_tree ~to_:tree1 ()
let u2 () = mk_update ~id:"hop-2" ~from:tree1 ~to_:tree2 ()

let cum ?(supersedes = [ "hop-1"; "hop-2" ]) () =
  mk_update ~supersedes ~id:"cum" ~from:base_tree ~to_:tree2 ()

let boot_base () =
  let build = Kbuild.build_tree_exn ~options:Minic.Driver.run_build base_tree in
  let img = Image.link_exn ~base:0x100000 (Kbuild.objects build) in
  let m = Machine.create img in
  let mgr = Apply.init m in
  let call () =
    let sym = Option.get (Image.lookup_global img "probe") in
    match Machine.call_function m ~addr:sym.addr ~args:[ 4l ] with
    | Ok v -> v
    | Error f -> Alcotest.failf "probe: %a" Machine.pp_fault f
  in
  (mgr, call)

let apply_ok mgr u =
  match Apply.apply mgr u with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "apply %s: %a" u.Ksplice.Update.update_id Apply.pp_error e

let undo_ok mgr id =
  match Apply.undo mgr id with
  | Ok () -> ()
  | Error e -> Alcotest.failf "undo %s: %a" id Apply.pp_error e

let stack_ids mgr =
  List.rev_map
    (fun (a : Apply.applied) -> a.Apply.update.Ksplice.Update.update_id)
    (Apply.applied mgr)

let stack_two mgr =
  apply_ok mgr (u1 ());
  apply_ok mgr (u2 ())

let test_collapse () =
  let mgr, call = boot_base () in
  stack_two mgr;
  Alcotest.(check int32) "stacked" 12l (call ());
  (match Apply.apply_cumulative mgr (cum ()) with
   | Ok a ->
     Alcotest.(check int) "two updates displaced" 2
       (List.length a.Apply.displaced)
   | Error e -> Alcotest.failf "atomic replace: %a" Apply.pp_error e);
  Alcotest.(check (list string)) "one update on the stack" [ "cum" ]
    (stack_ids mgr);
  Alcotest.(check int32) "behaviour preserved" 12l (call ());
  match Apply.verify mgr with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verify: %a" Apply.pp_error e

let test_footprint_matches_plain_twin () =
  let mgra, _ = boot_base () in
  let mgrb, _ = boot_base () in
  let c = cum () in
  (* twin A: unwind by hand, then a plain apply of the same update *)
  stack_two mgra;
  undo_ok mgra "hop-2";
  undo_ok mgra "hop-1";
  apply_ok mgra c;
  (* twin B: one atomic replace *)
  stack_two mgrb;
  (match Apply.apply_cumulative mgrb c with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "atomic replace: %a" Apply.pp_error e);
  Alcotest.(check string) "byte-identical footprints" (Apply.footprint mgra)
    (Apply.footprint mgrb)

let test_undo_restacks () =
  let mgr, call = boot_base () in
  stack_two mgr;
  (match Apply.apply_cumulative mgr (cum ()) with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "atomic replace: %a" Apply.pp_error e);
  undo_ok mgr "cum";
  Alcotest.(check (list string)) "chain re-stacked, oldest first"
    [ "hop-1"; "hop-2" ] (stack_ids mgr);
  Alcotest.(check int32) "stacked behaviour back" 12l (call ());
  (match Apply.verify mgr with
   | Ok () -> ()
   | Error e -> Alcotest.failf "verify after un-collapse: %a" Apply.pp_error e);
  (* and the revived chain unwinds all the way down *)
  undo_ok mgr "hop-2";
  undo_ok mgr "hop-1";
  Alcotest.(check (list string)) "empty stack" [] (stack_ids mgr);
  Alcotest.(check int32) "base behaviour restored" 4l (call ())

let test_fresh_machine_collapses_trivially () =
  let mgr, call = boot_base () in
  (match Apply.apply_cumulative mgr (cum ()) with
   | Ok a ->
     Alcotest.(check int) "nothing displaced" 0 (List.length a.Apply.displaced)
   | Error e -> Alcotest.failf "atomic replace: %a" Apply.pp_error e);
  Alcotest.(check (list string)) "installed" [ "cum" ] (stack_ids mgr);
  Alcotest.(check int32) "patched" 12l (call ())

let expect_integrity what = function
  | Error (Apply.Integrity _) -> ()
  | Ok _ -> Alcotest.failf "%s: expected an integrity error" what
  | Error e -> Alcotest.failf "%s: unexpected error: %a" what Apply.pp_error e

let test_integrity_checks () =
  (* supersedes nothing: not a cumulative update *)
  let mgr, _ = boot_base () in
  expect_integrity "non-cumulative" (Apply.apply_cumulative mgr (u1 ()));
  (* a superseded update buried beneath an unsuperseded one *)
  let mgr2, call = boot_base () in
  stack_two mgr2;
  expect_integrity "buried"
    (Apply.apply_cumulative mgr2 (cum ~supersedes:[ "hop-1" ] ()));
  (* supersedes out of chain order *)
  expect_integrity "order"
    (Apply.apply_cumulative mgr2 (cum ~supersedes:[ "hop-2"; "hop-1" ] ()));
  (* both rejections left the stack alone *)
  Alcotest.(check (list string)) "stack untouched" [ "hop-1"; "hop-2" ]
    (stack_ids mgr2);
  Alcotest.(check int32) "behaviour untouched" 12l (call ())

let test_fault_rolls_back_whole_collapse () =
  let mgr, _ = boot_base () in
  stack_two mgr;
  let c = cum () in
  let m = Apply.machine mgr in
  List.iteri
    (fun i step ->
      let snap = Machine.snapshot m in
      let plan =
        { Faultinj.step; kind = Faultinj.kind_for_step step; seed = 7 + i }
      in
      let session = Faultinj.make m plan in
      let r = Apply.apply_cumulative mgr ~inject:session c in
      Faultinj.disarm session;
      match r with
      | Error _ ->
        Alcotest.(check (list string))
          (Format.asprintf "%a leaves the machine byte-identical"
             Faultinj.pp_plan plan)
          []
          (Machine.diff_snapshot m snap);
        Alcotest.(check (list string))
          (Format.asprintf "%a leaves the stack standing" Faultinj.pp_plan
             plan)
          [ "hop-1"; "hop-2" ] (stack_ids mgr)
      | Ok _ ->
        (* benign or unfired: un-collapse to re-baseline the next step *)
        undo_ok mgr "cum")
    Txn.all_steps

let test_sweep_shallow () =
  let r = Corpus.Sweep.run_cumulative ~depths:[ 1; 2 ] () in
  if not (Corpus.Sweep.cumulative_ok r) then
    Alcotest.failf "cumulative sweep: %a" Corpus.Sweep.pp_cumulative r;
  Alcotest.(check int) "both depth rows ran" 2 (List.length r.cu_rows);
  List.iter
    (fun (row : Corpus.Sweep.curow) ->
      Alcotest.(check int)
        (Printf.sprintf "depth %d fully published" row.cu_requested)
        row.cu_requested row.cu_depth;
      Alcotest.(check bool) "fsck clean" true row.cu_fsck_clean)
    r.cu_rows;
  Alcotest.(check int) "both shadow extras round-tripped" 2
    (List.length r.cu_shadows);
  List.iter
    (fun (row : Corpus.Sweep.cushadow) ->
      Alcotest.(check bool)
        (row.cs_cve ^ " attached shadows")
        true (row.cs_shadows > 0))
    r.cu_shadows

let suite =
  [
    ( "cumulative",
      [
        t "atomic replace collapses the stack" test_collapse;
        t "footprint matches the plain twin" test_footprint_matches_plain_twin;
        t "undo re-stacks the superseded chain" test_undo_restacks;
        t "fresh machine collapses trivially"
          test_fresh_machine_collapses_trivially;
        t "integrity checks refuse bad stacks" test_integrity_checks;
        t "every fault rolls back the whole collapse"
          test_fault_rolls_back_whole_collapse;
        t "corpus sweep at shallow depth" test_sweep_shallow;
      ] );
  ]
