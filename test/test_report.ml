(* Writer/parser roundtrip for the BENCH.json perf baseline format. *)

module Json = Report.Json

let t name f = Alcotest.test_case name `Quick f
let q = QCheck_alcotest.to_alcotest

let sample =
  Json.Obj
    [
      ("schema", Json.Str "ksplice-bench/1");
      ("ok", Json.Bool true);
      ("nothing", Json.Null);
      ("n", Json.Num 42.);
      ("rate", Json.Num 0.875);
      ("empty_arr", Json.Arr []);
      ("empty_obj", Json.Obj []);
      ( "rows",
        Json.Arr
          [
            Json.Obj
              [ ("name", Json.Str "a b\n\"c\"\\d"); ("wall_s", Json.Num 1.5) ];
          ] );
    ]

let test_roundtrip () =
  match Json.parse (Json.to_string sample) with
  | Ok v -> Alcotest.(check bool) "roundtrip" true (v = sample)
  | Error m -> Alcotest.fail m

let test_accessors () =
  let get k = Json.member k sample in
  Alcotest.(check (option string))
    "member/to_str" (Some "ksplice-bench/1")
    (Option.bind (get "schema") Json.to_str);
  Alcotest.(check (option int)) "to_int" (Some 42)
    (Option.bind (get "n") Json.to_int);
  Alcotest.(check (option int))
    "to_int rejects fractions" None
    (Option.bind (get "rate") Json.to_int);
  Alcotest.(check bool) "to_list" true
    (Option.bind (get "rows") Json.to_list <> None);
  Alcotest.(check bool) "missing member" true (get "absent" = None)

let test_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail ("accepted: " ^ s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2"; "{}x";
      (* truncated and malformed \u escapes must be Error, never an
         exception, and the 4 digits must be hex — int_of_string-style
         laxness ("0x12_3", "0x+123") is not JSON *)
      "\"\\u"; "\"\\u1"; "\"\\u12"; "\"\\u123"; "\"\\u123\"";
      "\"\\u12_3\""; "\"\\u+123\""; "\"\\u12g3\"" ]

let test_nonfinite_nulls () =
  Alcotest.(check string) "nan prints null" "null\n"
    (Json.to_string (Json.Num Float.nan));
  Alcotest.(check string) "inf prints null" "null\n"
    (Json.to_string (Json.Num Float.infinity));
  Alcotest.(check string) "-inf prints null" "null\n"
    (Json.to_string (Json.Num Float.neg_infinity));
  (* a degenerate ratio inside a report stays parseable *)
  let doc = Json.Obj [ ("rate", Json.Num (0. /. 0.)); ("n", Json.Num 3.) ] in
  match Json.parse (Json.to_string doc) with
  | Ok v ->
    Alcotest.(check bool) "nan member became null" true
      (Json.member "rate" v = Some Json.Null);
    Alcotest.(check (option int)) "siblings survive" (Some 3)
      (Option.bind (Json.member "n" v) Json.to_int)
  | Error m -> Alcotest.fail m

let test_unicode_escapes () =
  (* \uXXXX >= 0x80 decodes to UTF-8 and re-escapes to ASCII: a fixpoint *)
  (match Json.parse "\"\\u00e9\"" with
   | Ok (Json.Str s as v) ->
     Alcotest.(check string) "\\u00e9 decodes to UTF-8" "\xc3\xa9" s;
     let printed = Json.to_string v in
     Alcotest.(check bool) "writer output is pure ASCII" true
       (String.for_all (fun c -> Char.code c < 0x80) printed);
     Alcotest.(check bool) "re-escaped, not raw" true
       (let rec has i =
          i + 6 <= String.length printed
          && (String.sub printed i 6 = "\\u00e9" || has (i + 1))
        in
        has 0);
     Alcotest.(check bool) "parse/print fixpoint" true
       (Json.parse printed = Ok v)
   | Ok _ -> Alcotest.fail "\\u00e9 did not parse to a string"
   | Error m -> Alcotest.fail m);
  (* a 3-byte escape round-trips too *)
  (match Json.parse "\"\\u20ac\"" with
   | Ok v -> Alcotest.(check bool) "\\u20ac fixpoint" true
               (Json.parse (Json.to_string v) = Ok v)
   | Error m -> Alcotest.fail m);
  (* bytes that are not valid UTF-8 ride through as \udcXX surrogate
     escapes: the codec is total over arbitrary byte strings *)
  let junk = Json.Str "\xff\xfe ok \x80" in
  let printed = Json.to_string junk in
  Alcotest.(check bool) "invalid bytes escape as \\udcXX" true
    (let rec has i =
       i + 6 <= String.length printed
       && (String.sub printed i 6 = "\\udcff" || has (i + 1))
     in
     has 0);
  Alcotest.(check bool) "surrogate escapes fold back" true
    (Json.parse printed = Ok junk);
  let all_bytes = Json.Str (String.init 256 Char.chr) in
  Alcotest.(check bool) "all 256 bytes round-trip" true
    (Json.parse (Json.to_string all_bytes) = Ok all_bytes)

let gen_json =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Num (float_of_int i)) small_signed_int;
            map (fun s -> Json.Str s) (string_size (int_bound 8));
          ]
      in
      if n = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 1,
              map
                (fun l -> Json.Arr l)
                (list_size (int_bound 4) (self (n / 2))) );
            ( 1,
              map
                (fun l -> Json.Obj l)
                (list_size (int_bound 4)
                   (pair (string_size (int_bound 6)) (self (n / 2)))) );
          ])

let prop_roundtrip =
  QCheck2.Test.make ~name:"to_string/parse roundtrip" ~count:200 gen_json
    (fun v -> Json.parse (Json.to_string v) = Ok v)

(* strings with teeth: all 256 bytes, heavy on control chars, quotes,
   backslashes, and UTF-8-looking fragments *)
let gen_wild_string =
  let open QCheck2.Gen in
  let wild_char =
    frequency
      [
        (4, char);
        (2, oneofl [ '"'; '\\'; '\n'; '\r'; '\t'; '\x00'; '\x1f'; '\x7f' ]);
        (2, map Char.chr (int_range 0x80 0xff));
      ]
  in
  string_size ~gen:wild_char (int_bound 24)

let prop_roundtrip_wild =
  QCheck2.Test.make ~name:"roundtrip over arbitrary byte strings" ~count:500
    gen_wild_string
    (fun s -> Json.parse (Json.to_string (Json.Str s)) = Ok (Json.Str s))

(* parsing any prefix of a valid document returns (Ok or Error) without
   raising — the PR 3 "corrupt logs fail loudly" promise, total over
   truncation points including mid-\u-escape *)
let prop_prefix_total =
  QCheck2.Test.make ~name:"every prefix parses without raising" ~count:100
    gen_json (fun v ->
      let text = Json.to_string v in
      let ok = ref true in
      for len = 0 to String.length text - 1 do
        match Json.parse (String.sub text 0 len) with
        | Ok _ | Error _ -> ()
        | exception e ->
          Printf.printf "prefix %d raised %s\n" len (Printexc.to_string e);
          ok := false
      done;
      !ok)

let suite =
  [
    ( "report json",
      [
        t "sample roundtrip" test_roundtrip;
        t "accessors" test_accessors;
        t "parse errors" test_parse_errors;
        t "non-finite floats print null" test_nonfinite_nulls;
        t "unicode and surrogate escapes" test_unicode_escapes;
        q prop_roundtrip;
        q prop_roundtrip_wild;
        q prop_prefix_total;
      ] );
  ]
