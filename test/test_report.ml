(* Writer/parser roundtrip for the BENCH.json perf baseline format. *)

module Json = Report.Json

let t name f = Alcotest.test_case name `Quick f
let q = QCheck_alcotest.to_alcotest

let sample =
  Json.Obj
    [
      ("schema", Json.Str "ksplice-bench/1");
      ("ok", Json.Bool true);
      ("nothing", Json.Null);
      ("n", Json.Num 42.);
      ("rate", Json.Num 0.875);
      ("empty_arr", Json.Arr []);
      ("empty_obj", Json.Obj []);
      ( "rows",
        Json.Arr
          [
            Json.Obj
              [ ("name", Json.Str "a b\n\"c\"\\d"); ("wall_s", Json.Num 1.5) ];
          ] );
    ]

let test_roundtrip () =
  match Json.parse (Json.to_string sample) with
  | Ok v -> Alcotest.(check bool) "roundtrip" true (v = sample)
  | Error m -> Alcotest.fail m

let test_accessors () =
  let get k = Json.member k sample in
  Alcotest.(check (option string))
    "member/to_str" (Some "ksplice-bench/1")
    (Option.bind (get "schema") Json.to_str);
  Alcotest.(check (option int)) "to_int" (Some 42)
    (Option.bind (get "n") Json.to_int);
  Alcotest.(check (option int))
    "to_int rejects fractions" None
    (Option.bind (get "rate") Json.to_int);
  Alcotest.(check bool) "to_list" true
    (Option.bind (get "rows") Json.to_list <> None);
  Alcotest.(check bool) "missing member" true (get "absent" = None)

let test_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail ("accepted: " ^ s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2"; "{}x" ]

let gen_json =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Num (float_of_int i)) small_signed_int;
            map (fun s -> Json.Str s) (string_size (int_bound 8));
          ]
      in
      if n = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 1,
              map
                (fun l -> Json.Arr l)
                (list_size (int_bound 4) (self (n / 2))) );
            ( 1,
              map
                (fun l -> Json.Obj l)
                (list_size (int_bound 4)
                   (pair (string_size (int_bound 6)) (self (n / 2)))) );
          ])

let prop_roundtrip =
  QCheck2.Test.make ~name:"to_string/parse roundtrip" ~count:200 gen_json
    (fun v -> Json.parse (Json.to_string v) = Ok v)

let suite =
  [
    ( "report json",
      [
        t "sample roundtrip" test_roundtrip;
        t "accessors" test_accessors;
        t "parse errors" test_parse_errors;
        q prop_roundtrip;
      ] );
  ]
