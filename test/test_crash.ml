(* Crash-safety tests: the injectable VFS fault driver, the write-ahead
   ref journal and recovery-on-open, fsck, and mark-and-sweep GC. The
   sweeping tests enumerate every mutating I/O op of a scenario with a
   fault-free counting probe, then kill or fail the run at each one and
   assert the recovered store is fsck-clean and all-or-nothing. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Repo = Ksplice.Repository
module Create = Ksplice.Create

let t name f = Alcotest.test_case name `Quick f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* a fresh path that does not exist yet; cleaned up afterwards *)
let with_dir f =
  let dir = Filename.temp_file "ksplcrash" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let is_prefix_of whole part =
  String.length part <= String.length whole
  && String.equal part (String.sub whole 0 (String.length part))

(* every *.tmp file under the store's blobs/ and refs/ directories *)
let tmp_files dir =
  List.concat_map
    (fun sub ->
      let d = Filename.concat dir sub in
      if Sys.file_exists d && Sys.is_directory d then
        Array.to_list (Sys.readdir d)
        |> List.filter (fun e -> Filename.check_suffix e ".tmp")
        |> List.map (Filename.concat sub)
      else [])
    [ "blobs"; "refs" ]

(* --- the fault driver itself --- *)

let test_crash_poisons_all_io () =
  with_dir (fun dir ->
      Sys.mkdir dir 0o755;
      let vfs, inj =
        Vfs.inject { Vfs.at = 2; kind = Vfs.Crash; seed = 7 } Vfs.real
      in
      let f1 = Filename.concat dir "a" and f2 = Filename.concat dir "b" in
      vfs.Vfs.write_file f1 "hello";
      (match vfs.Vfs.write_file f2 "world" with
       | () -> Alcotest.fail "expected Crashed"
       | exception Vfs.Crashed -> ());
      Alcotest.(check bool) "fault fired" true (Vfs.fired inj);
      Alcotest.(check int) "two ops attempted" 2 (Vfs.ops inj);
      (* the process is gone: even reads refuse on this handle *)
      (match vfs.Vfs.read_file f1 with
       | _ -> Alcotest.fail "read after crash must refuse"
       | exception Vfs.Crashed -> ());
      (match vfs.Vfs.fsync f1 with
       | () -> Alcotest.fail "fsync after crash must refuse"
       | exception Vfs.Crashed -> ());
      (* the torn prefix landed on disk (a fresh handle sees it) *)
      Alcotest.(check bool) "torn file exists" true (Sys.file_exists f2);
      let torn = Vfs.real.Vfs.read_file f2 in
      Alcotest.(check bool) "a prefix landed" true (is_prefix_of "world" torn))

let test_enospc_is_one_shot () =
  with_dir (fun dir ->
      Sys.mkdir dir 0o755;
      let vfs, inj =
        Vfs.inject { Vfs.at = 1; kind = Vfs.Enospc; seed = 5 } Vfs.real
      in
      let f = Filename.concat dir "a" in
      (match vfs.Vfs.write_file f "contents" with
       | () -> Alcotest.fail "expected Io_error"
       | exception Vfs.Io_error { op = "write"; _ } -> ());
      Alcotest.(check bool) "fault fired" true (Vfs.fired inj);
      (* the run survives: the retry goes through in full *)
      vfs.Vfs.write_file f "contents";
      Alcotest.(check string) "retry lands whole" "contents"
        (vfs.Vfs.read_file f))

let test_torn_write_lies () =
  with_dir (fun dir ->
      Sys.mkdir dir 0o755;
      let vfs, inj =
        Vfs.inject { Vfs.at = 1; kind = Vfs.Torn; seed = 42 } Vfs.real
      in
      let f = Filename.concat dir "a" in
      (* reports success; only a prefix may have landed *)
      vfs.Vfs.write_file f "abcdefghij";
      Alcotest.(check bool) "fault fired" true (Vfs.fired inj);
      let got = Vfs.real.Vfs.read_file f in
      Alcotest.(check bool) "a prefix landed" true
        (is_prefix_of "abcdefghij" got))

(* --- atomic file landing: a failed put leaves no temp debris --- *)

let test_failed_put_leaves_no_tmp () =
  let scenario vfs dir =
    let s = Store.create ~name:"nospc" ~dir ~vfs () in
    ignore (Store.put s "payload bytes" : Store.digest)
  in
  let count =
    with_dir (fun dir ->
        let vfs, ops = Vfs.counting Vfs.real in
        scenario vfs dir;
        ops ())
  in
  Alcotest.(check bool) "probe saw ops" true (count > 0);
  for i = 1 to count do
    with_dir (fun dir ->
        let vfs, _ =
          Vfs.inject { Vfs.at = i; kind = Vfs.Enospc; seed = i } Vfs.real
        in
        (try scenario vfs dir with Vfs.Io_error _ -> ());
        if Sys.file_exists dir then begin
          (* the rename-or-unlink contract: never a stranded temp file *)
          Alcotest.(check (list string))
            (Printf.sprintf "no tmp debris after ENOSPC at op %d" i)
            [] (tmp_files dir);
          let s = Store.create ~name:"reopen" ~dir () in
          match Store.fsck s with
          | Ok _ -> ()
          | Error r ->
            Alcotest.failf "fsck dirty after ENOSPC at op %d: %a" i
              Store.pp_fsck_issue (List.hd r.Store.f_issues)
        end)
  done

let test_stray_tmp_swept_on_open () =
  with_dir (fun dir ->
      (let s = Store.create ~name:"w" ~dir () in
       ignore (Store.put s "a real blob" : Store.digest));
      (* a writer that died before its rename *)
      let stray = Filename.concat (Filename.concat dir "blobs") "dead.tmp" in
      Out_channel.with_open_bin stray (fun oc -> output_string oc "half");
      let s = Store.create ~name:"reboot" ~dir ~share:false () in
      (match Store.recovery s with
       | Some r -> Alcotest.(check int) "one tmp swept" 1 r.Store.tmp_removed
       | None -> Alcotest.fail "expected a recovery report");
      Alcotest.(check bool) "stray gone" false (Sys.file_exists stray);
      match Store.fsck s with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "fsck dirty after tmp sweep")

let test_mkdir_failure_is_typed () =
  with_dir (fun dir ->
      Sys.mkdir dir 0o755;
      let file = Filename.concat dir "plain" in
      Out_channel.with_open_bin file (fun oc -> output_string oc "x");
      (* the store root would have to live under a regular file *)
      let sub = Filename.concat file "store" in
      (match Store.create ~name:"bad" ~dir:sub () with
       | exception Vfs.Io_error _ -> ()
       | _ -> Alcotest.fail "expected a typed Io_error from create");
      match Repo.open_dir sub with
      | Error (Repo.Io_failure _) -> ()
      | Error e -> Alcotest.failf "unexpected error: %a" Repo.pp_error e
      | Ok _ -> Alcotest.fail "expected Io_failure from open_dir")

(* --- the write-ahead ref journal --- *)

let test_commit_refs_all_or_nothing () =
  let scenario vfs dir =
    let s = Store.create ~name:"txn" ~dir ~vfs () in
    let d1 = Store.put s "blob one" in
    let d2 = Store.put s "blob two" in
    Store.commit_refs s [ ("r1", d1); ("r2", d2) ]
  in
  let count =
    with_dir (fun dir ->
        let vfs, ops = Vfs.counting Vfs.real in
        scenario vfs dir;
        ops ())
  in
  for i = 1 to count do
    with_dir (fun dir ->
        let vfs, inj =
          Vfs.inject { Vfs.at = i; kind = Vfs.Crash; seed = 17 * i } Vfs.real
        in
        (try scenario vfs dir with Vfs.Crashed -> ());
        Alcotest.(check bool) "fault fired" true (Vfs.fired inj);
        if Sys.file_exists dir then begin
          let s = Store.create ~name:"reboot" ~dir ~share:false () in
          (match Store.fsck s with
           | Ok _ -> ()
           | Error r ->
             Alcotest.failf "fsck dirty after crash at op %d: %a" i
               Store.pp_fsck_issue (List.hd r.Store.f_issues));
          match (Store.find_ref s "r1", Store.find_ref s "r2") with
          | None, None -> ()
          | Some a, Some b ->
            Alcotest.(check (option string))
              "r1 resolves" (Some "blob one") (Store.get s a);
            Alcotest.(check (option string))
              "r2 resolves" (Some "blob two") (Store.get s b)
          | _ -> Alcotest.failf "torn ref flip survived a crash at op %d" i
        end)
  done

let test_torn_journal_tail_discarded () =
  with_dir (fun dir ->
      let d =
        let s = Store.create ~name:"w" ~dir () in
        let d = Store.put s "stable blob" in
        Store.commit_refs s [ ("head", d) ];
        d
      in
      (* a writer died mid-append: garbage half-record in the journal *)
      let oc =
        open_out_gen
          [ Open_append; Open_creat; Open_binary ]
          0o644
          (Filename.concat dir "journal")
      in
      output_string oc "J1 999:this record was torn";
      close_out oc;
      let s = Store.create ~name:"reboot" ~dir ~share:false () in
      (match Store.recovery s with
       | Some r ->
         Alcotest.(check int) "torn tail discarded" 1 r.Store.torn_discarded
       | None -> Alcotest.fail "expected a recovery report");
      Alcotest.(check (option string))
        "committed ref untouched" (Some d) (Store.find_ref s "head");
      match Store.fsck s with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "fsck dirty after torn-journal recovery")

let test_journal_rolls_back_unverifiable () =
  with_dir (fun dir ->
      (* a commit point whose new blob never reached the disk: recovery
         must undo it, not install a dangling ref *)
      let missing = Store.digest_of_string "never interned" in
      (let s = Store.create ~name:"w" ~dir () in
       Store.append_journal s [ ("head", None, missing) ]);
      let s = Store.create ~name:"reboot" ~dir ~share:false () in
      (match Store.recovery s with
       | Some r ->
         Alcotest.(check int) "rolled back" 1 r.Store.rolled_back;
         Alcotest.(check int) "not forward" 0 r.Store.rolled_forward
       | None -> Alcotest.fail "expected a recovery report");
      Alcotest.(check (option string))
        "ref absent" None (Store.find_ref s "head");
      match Store.fsck s with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "fsck dirty after rollback")

let test_journal_rolls_forward_committed () =
  with_dir (fun dir ->
      (* a writer that died right after its commit point: the record is
         durable and the blob verifies, so recovery completes the flip *)
      let d =
        let s = Store.create ~name:"w" ~dir () in
        let d = Store.put s "durable blob" in
        Store.append_journal s [ ("head", None, d) ];
        d
      in
      let s = Store.create ~name:"reboot" ~dir ~share:false () in
      (match Store.recovery s with
       | Some r ->
         Alcotest.(check int) "rolled forward" 1 r.Store.rolled_forward
       | None -> Alcotest.fail "expected a recovery report");
      Alcotest.(check (option string))
        "ref installed" (Some d) (Store.find_ref s "head"))

(* --- repository-level scenarios --- *)

let base_tree =
  Tree.of_list
    [ ( "kernel/k.c",
        "int level = 1;\n\
         int probe(int x) {\n\
        \  int acc = 0;\n\
        \  int i;\n\
        \  for (i = 0; i < x; i = i + 1)\n\
        \    acc = acc + level;\n\
        \  return acc;\n\
         }\n" ) ]

let tree1 =
  Tree.add base_tree "kernel/k.c"
    "int level = 1;\n\
     int probe(int x) {\n\
    \  int acc = 0;\n\
    \  int i;\n\
    \  for (i = 0; i < x; i = i + 1)\n\
    \    acc = acc + level + 1;\n\
    \  return acc;\n\
     }\n"

let mk_update ~id ~from ~to_ =
  match
    Create.create
      { source = from; patch = Diff.diff_trees from to_; update_id = id;
        description = id }
  with
  | Ok c -> c.update
  | Error e -> Alcotest.failf "create %s: %a" id Create.pp_error e

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Repo.pp_error e

let publish_hop ?vfs dir =
  let repo =
    match Repo.open_dir ?vfs dir with
    | Ok r -> r
    | Error e -> Alcotest.failf "open_dir: %a" Repo.pp_error e
  in
  let u = mk_update ~id:"hop-1" ~from:base_tree ~to_:tree1 in
  Repo.publish repo ~source:base_tree
    ~patch:(Diff.diff_trees base_tree tree1)
    ~update:u

let chain_ids repo =
  ok "pending" (Repo.pending repo ~digest:(Tree.digest base_tree))
  |> List.map (fun (e : Repo.entry) -> e.update.Ksplice.Update.update_id)

let test_enospc_mid_publish () =
  with_dir (fun dir ->
      (* op 8 lands inside the entry's blob puts: after the three mkdirs
         and the first four-op atomic write, before any commit record *)
      let vfs, inj =
        Vfs.inject { Vfs.at = 8; kind = Vfs.Enospc; seed = 3 } Vfs.real
      in
      (match publish_hop ~vfs dir with
       | Error (Repo.Io_failure _) -> ()
       | Ok _ -> Alcotest.fail "expected Io_failure"
       | Error e -> Alcotest.failf "unexpected error: %a" Repo.pp_error e);
      Alcotest.(check bool) "fault fired" true (Vfs.fired inj);
      let repo = ok "reopen" (Repo.open_dir dir) in
      (match Repo.fsck repo with
       | Ok _ -> ()
       | Error _ -> Alcotest.fail "fsck dirty after failed publish");
      Alcotest.(check (list string)) "nothing published" [] (chain_ids repo))

let test_gc_reclaims_only_unreachable () =
  with_dir (fun dir ->
      ignore (ok "publish" (publish_hop dir) : Repo.entry);
      let repo = ok "open" (Repo.open_dir dir) in
      let store = Repo.store repo in
      let orphans =
        List.map (Store.put store)
          [ "garbage one"; "garbage two"; "garbage three" ]
      in
      let g =
        match Repo.gc repo with
        | Ok g -> g
        | Error e -> Alcotest.failf "gc: %a" Repo.pp_error e
      in
      Alcotest.(check int) "three orphans swept" 3 g.Store.gc_swept;
      Alcotest.(check bool) "bytes reclaimed" true (g.Store.gc_bytes > 0);
      List.iter
        (fun d ->
          Alcotest.(check bool) "orphan gone" false (Store.mem store d))
        orphans;
      (* the chain still decodes end-to-end from what GC kept *)
      Alcotest.(check (list string)) "chain intact" [ "hop-1" ]
        (chain_ids repo);
      match Repo.fsck repo with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "fsck dirty after gc")

let test_txn_pins_survive_gc () =
  with_dir (fun dir ->
      let s = Store.create ~name:"pin" ~dir () in
      let d = ref "" in
      Store.with_txn s (fun () ->
          (* an in-flight publish: interned but not yet referenced *)
          d := Store.put s "in-flight publish blob";
          match Store.gc s with
          | Ok g ->
            Alcotest.(check int) "pinned as a root" 1 g.Store.gc_pinned;
            Alcotest.(check int) "nothing swept" 0 g.Store.gc_swept
          | Error m -> Alcotest.failf "gc inside txn: %s" m);
      Alcotest.(check bool) "survived the racing gc" true (Store.mem s !d);
      (* transaction over, still unreferenced: now it is garbage *)
      match Store.gc s with
      | Ok g -> Alcotest.(check int) "collected after txn" 1 g.Store.gc_swept
      | Error m -> Alcotest.failf "gc after txn: %s" m)

let test_fsck_detects_corrupt_blob () =
  with_dir (fun dir ->
      let d =
        let s = Store.create ~name:"w" ~dir () in
        let d = Store.put s "precious bytes" in
        Store.commit_refs s [ ("head", d) ];
        d
      in
      let path = Filename.concat (Filename.concat dir "blobs") d in
      let raw = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          output_string oc ("X" ^ String.sub raw 1 (String.length raw - 1)));
      let s = Store.create ~name:"check" ~dir ~share:false () in
      match Store.fsck s with
      | Ok _ -> Alcotest.fail "fsck missed a corrupt blob"
      | Error r ->
        Alcotest.(check bool) "reports the corruption" true
          (List.exists
             (function Store.Corrupt_blob _ -> true | _ -> false)
             r.Store.f_issues))

(* --- the property: a publish crashed at ANY I/O op recovers clean --- *)

let publish_op_count =
  lazy
    (with_dir (fun dir ->
         let vfs, ops = Vfs.counting Vfs.real in
         (match publish_hop ~vfs dir with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "probe publish: %a" Repo.pp_error e);
         ops ()))

let prop_crash_recovers_all_or_nothing =
  QCheck2.Test.make
    ~name:"publish crashed at any I/O op recovers fsck-clean, all-or-nothing"
    ~count:30
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 0 10_000))
    (fun (at0, seed) ->
      let n = Lazy.force publish_op_count in
      let at = 1 + (at0 mod n) in
      with_dir (fun dir ->
          let vfs, _ =
            Vfs.inject { Vfs.at = at; kind = Vfs.Crash; seed } Vfs.real
          in
          (match publish_hop ~vfs dir with
           | exception Vfs.Crashed -> ()
           | Ok _ | Error _ -> ());
          (* crash before the first mkdir leaves nothing to check *)
          (not (Sys.file_exists dir))
          ||
          let repo =
            match Repo.open_dir dir with
            | Ok r -> r
            | Error e ->
              Alcotest.failf "reopen after crash at op %d: %a" at
                Repo.pp_error e
          in
          let clean =
            match Repo.fsck repo with Ok _ -> true | Error _ -> false
          in
          let chain = chain_ids repo in
          clean && (chain = [] || chain = [ "hop-1" ])))

let suite =
  [
    ( "crash",
      [
        t "crash poisons all I/O" test_crash_poisons_all_io;
        t "ENOSPC is one-shot" test_enospc_is_one_shot;
        t "torn write lies" test_torn_write_lies;
        t "failed put leaves no tmp" test_failed_put_leaves_no_tmp;
        t "stray tmp swept on open" test_stray_tmp_swept_on_open;
        t "mkdir failure is typed" test_mkdir_failure_is_typed;
        t "commit_refs is all-or-nothing" test_commit_refs_all_or_nothing;
        t "torn journal tail discarded" test_torn_journal_tail_discarded;
        t "journal rolls back unverifiable" test_journal_rolls_back_unverifiable;
        t "journal rolls forward committed" test_journal_rolls_forward_committed;
        t "ENOSPC mid-publish" test_enospc_mid_publish;
        t "gc reclaims only unreachable" test_gc_reclaims_only_unreachable;
        t "txn pins survive gc" test_txn_pins_survive_gc;
        t "fsck detects a corrupt blob" test_fsck_detects_corrupt_blob;
        QCheck_alcotest.to_alcotest prop_crash_recovers_all_or_nothing;
      ] );
  ]
