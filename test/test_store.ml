(* Tests for the content-addressed artifact store (lib/store): blob
   round-trips, LRU bounds, the on-disk tier's re-digest corruption
   check, dedup accounting, fingerprint determinism, typed codecs, and
   the incremental-vs-from-scratch byte-identity of Create.create. *)

module Tree = Patchfmt.Source_tree
module Create = Ksplice.Create
module Update = Ksplice.Update

let t name f = Alcotest.test_case name `Quick f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = Filename.temp_file "ksplstore" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let gen_blobs =
  QCheck2.Gen.(list_size (int_range 1 30) (string_size (int_range 0 200)))

(* get (put b) = b over arbitrary bytes *)
let prop_put_get =
  QCheck2.Test.make ~name:"get (put b) = b" ~count:100 gen_blobs (fun blobs ->
      let s = Store.create ~name:"prop" ~capacity:64 () in
      let digests = List.map (fun b -> (Store.put s b, b)) blobs in
      List.for_all (fun (d, b) -> Store.get s d = Some b) digests)

(* with a disk tier, eviction never changes lookup results: memory
   entries dropped by the LRU bound re-read (and re-verify) from disk *)
let prop_eviction_is_invisible =
  QCheck2.Test.make ~name:"disk-backed eviction never loses blobs" ~count:30
    gen_blobs (fun blobs ->
      with_dir (fun dir ->
          let s = Store.create ~name:"prop" ~capacity:2 ~dir () in
          let digests = List.map (fun b -> (Store.put s b, b)) blobs in
          let st = Store.stats s in
          st.Store.entries <= 2
          && List.for_all (fun (d, b) -> Store.get s d = Some b) digests))

(* the on-disk tier round-trips across handles and rejects tampering *)
let prop_disk_roundtrip_and_tamper =
  QCheck2.Test.make ~name:"on-disk tier round-trips and rejects tampering"
    ~count:30
    QCheck2.Gen.(string_size (int_range 1 200))
    (fun blob ->
      with_dir (fun dir ->
          let d =
            let s = Store.create ~name:"w" ~dir () in
            Store.put s blob
          in
          (* fresh handle: the blob must come back from disk verbatim *)
          let s2 = Store.create ~name:"r" ~dir ~share:false () in
          let roundtrips = Store.get s2 d = Some blob in
          (* flip one byte on disk; a third handle must refuse the blob *)
          let path = Filename.concat (Filename.concat dir "blobs") d in
          let raw = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
          let i = Bytes.length raw / 2 in
          Bytes.set raw i (Char.chr (Char.code (Bytes.get raw i) lxor 1));
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_bytes oc raw);
          let s3 = Store.create ~name:"r2" ~dir ~share:false () in
          let rejected =
            match Store.load s3 d with
            | Error (`Corrupt _) -> true
            | Ok _ | Error `Missing -> false
          in
          let counted = (Store.stats s3).Store.corrupt = 1 in
          roundtrips && rejected && counted))

let test_dedup_accounting () =
  let s = Store.create ~name:"dedup" () in
  let blob = String.make 1000 'x' in
  let d1 = Store.put s blob in
  let d2 = Store.put s blob in
  Alcotest.(check string) "same digest" d1 d2;
  let st = Store.stats s in
  Alcotest.(check int) "puts" 2 st.Store.puts;
  Alcotest.(check int) "dedup hits" 1 st.Store.dedup_hits;
  Alcotest.(check int) "bytes put once" 1000 st.Store.bytes_put;
  Alcotest.(check int) "bytes saved" 1000 st.Store.bytes_deduped

let test_lookup_counts () =
  let s = Store.create ~name:"counts" () in
  Alcotest.(check (option string)) "miss" None (Store.lookup s "k");
  let _ = Store.remember s ~key:"k" "v" in
  Alcotest.(check (option string)) "hit" (Some "v") (Store.lookup s "k");
  let st = Store.stats s in
  Alcotest.(check int) "one hit" 1 st.Store.hits;
  Alcotest.(check int) "one miss" 1 st.Store.misses

let test_memory_lru_bound () =
  let s = Store.create ~name:"lru" ~capacity:4 () in
  for i = 1 to 20 do
    ignore (Store.remember s ~key:(string_of_int i) (String.make i 'a'))
  done;
  let st = Store.stats s in
  Alcotest.(check bool) "bounded" true (st.Store.entries <= 4);
  Alcotest.(check bool) "evicted" true (st.Store.evictions > 0);
  (* memory-only: refs left dangling by eviction are dropped with it *)
  Alcotest.(check bool)
    "refs bounded" true
    (List.length (Store.refs s) <= 4)

let test_fingerprint_order_independent () =
  let blobs = List.init 10 (fun i -> String.make (i + 1) (Char.chr (65 + i))) in
  let s1 = Store.create ~name:"f1" () in
  List.iter (fun b -> ignore (Store.put s1 b)) blobs;
  Store.set_ref s1 "head" (Store.digest_of_string (List.hd blobs));
  let s2 = Store.create ~name:"f2" () in
  List.iter (fun b -> ignore (Store.put s2 b)) (List.rev blobs);
  Store.set_ref s2 "head" (Store.digest_of_string (List.hd blobs));
  Alcotest.(check string)
    "same contents, any order -> same fingerprint" (Store.fingerprint s1)
    (Store.fingerprint s2);
  ignore (Store.put s2 "one more");
  Alcotest.(check bool)
    "different contents -> different fingerprint" false
    (String.equal (Store.fingerprint s1) (Store.fingerprint s2))

module Pair_codec = Store.Typed (struct
  type v = string * string

  let codec_id = "test-pair/1"
  let encode (a, b) = string_of_int (String.length a) ^ ":" ^ a ^ b

  let decode s =
    match String.index_opt s ':' with
    | None -> Error "no separator"
    | Some i -> (
      match int_of_string_opt (String.sub s 0 i) with
      | Some n when n >= 0 && i + 1 + n <= String.length s ->
        Ok
          ( String.sub s (i + 1) n,
            String.sub s (i + 1 + n) (String.length s - i - 1 - n) )
      | _ -> Error "bad length")
end)

let test_typed_codec () =
  let s = Store.create ~name:"typed" () in
  let v = ("alpha", "beta") in
  let d = Pair_codec.put s v in
  (match Pair_codec.get s d with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error _ -> Alcotest.fail "typed get failed");
  (* a blob that is not a valid encoding must yield `Decode, not crash *)
  let bad = Store.put s "not a pair" in
  (match Pair_codec.get s bad with
  | Error (`Decode _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected `Decode");
  let _ = Pair_codec.remember s ~key:"p" v in
  Alcotest.(check bool)
    "typed lookup" true
    (Pair_codec.lookup s "p" = Some v)

(* incremental-vs-from-scratch byte-identity of Create.create over
   corpus CVEs, plus the skipped-units counter that proves the warm
   path really skipped differencing *)
let test_incremental_create_identity () =
  let base = Corpus.Base_kernel.tree () in
  let cves =
    List.filteri (fun i _ -> i < 4) Corpus.Cve.all
  in
  List.iter
    (fun (cve : Corpus.Cve.t) ->
      let req =
        { Create.source = base; patch = Corpus.Cve.hot_patch cve base;
          update_id = cve.id; description = cve.desc }
      in
      let created store =
        match Create.create ~store req with
        | Ok c -> c.Create.update
        | Error e -> Alcotest.failf "create %s: %a" cve.id Create.pp_error e
      in
      let cold = created (Store.create ~name:"cold" ()) in
      let shared = Store.create ~name:"warm" () in
      let first = created shared in
      Create.reset_creation_stats ();
      let warm = created shared in
      Alcotest.(check bool)
        (cve.id ^ " warm run skipped differencing")
        true
        (Create.skipped_units () > 0);
      Alcotest.(check bool)
        (cve.id ^ " cold = first") true
        (Bytes.equal (Update.to_bytes cold) (Update.to_bytes first));
      Alcotest.(check bool)
        (cve.id ^ " incremental = from-scratch")
        true
        (Bytes.equal (Update.to_bytes cold) (Update.to_bytes warm)))
    cves

(* two identical runs produce byte-identical store contents *)
let test_store_contents_deterministic () =
  let base = Corpus.Base_kernel.tree () in
  let cve = List.hd Corpus.Cve.all in
  let req =
    { Create.source = base; patch = Corpus.Cve.hot_patch cve base;
      update_id = cve.id; description = cve.desc }
  in
  let run () =
    let s = Store.create ~name:"det" () in
    (match Create.create ~store:s req with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "create: %a" Create.pp_error e);
    Store.fingerprint s
  in
  Alcotest.(check string) "identical runs, identical contents" (run ()) (run ())

(* two handles on one directory share one in-process memory tier; a
   private handle, a different directory, or an injected vfs do not *)
let test_shared_registry () =
  with_dir (fun dir ->
      let a = Store.create ~name:"first" ~dir () in
      let b = Store.create ~name:"second" ~dir () in
      Alcotest.(check bool) "same handle" true (a == b);
      Alcotest.(check string) "first creator's name wins" "first"
        (Store.name b);
      let d = Store.put a "shared bytes" in
      Alcotest.(check (option string))
        "write visible through the other handle, no disk round-trip"
        (Some "shared bytes") (Store.get b d);
      let cold = Store.create ~name:"cold" ~dir ~share:false () in
      Alcotest.(check bool) "share:false is private" true (cold != a);
      let vfs, _ =
        Vfs.inject { Vfs.at = max_int; kind = Vfs.Crash; seed = 0 } Vfs.real
      in
      let sim = Store.create ~name:"sim" ~dir ~vfs () in
      Alcotest.(check bool) "injected vfs is never shared" true (sim != a);
      let ro = Store.create ~name:"ro" ~dir ~recover:false () in
      Alcotest.(check bool) "recover:false is never shared" true (ro != a);
      with_dir (fun other ->
          let c = Store.create ~name:"other" ~dir:other () in
          Alcotest.(check bool) "different directory" true (c != a)))

let suite =
  [
    ( "store",
      [
        QCheck_alcotest.to_alcotest prop_put_get;
        t "same-directory handles share one memory tier"
          test_shared_registry;
        QCheck_alcotest.to_alcotest prop_eviction_is_invisible;
        QCheck_alcotest.to_alcotest prop_disk_roundtrip_and_tamper;
        t "dedup accounting" test_dedup_accounting;
        t "lookup counts hits and misses" test_lookup_counts;
        t "memory LRU bound" test_memory_lru_bound;
        t "fingerprint is order-independent" test_fingerprint_order_independent;
        t "typed codec" test_typed_codec;
        t "incremental create is byte-identical" test_incremental_create_identity;
        t "store contents deterministic" test_store_contents_deterministic;
      ] );
  ]
