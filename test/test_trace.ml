(* The structured tracing layer: span nesting, the bounded ring buffer,
   parent preservation across the domain pool, counters/histograms, and
   the determinism contract (identical runs export byte-identical
   traces — the property the whole layer is clocked by retired
   instructions to keep). *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Image = Klink.Image
module Machine = Kernel.Machine
module Create = Ksplice.Create
module Apply = Ksplice.Apply

let t name f = Alcotest.test_case name `Quick f

(* every test owns the global collector: start clean, leave clean
   (reset preserves capacity, so restore the default explicitly) *)
let with_trace f =
  Trace.reset ();
  Trace.set_capacity 16384;
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    f

let test_disabled_is_noop () =
  Trace.reset ();
  Trace.set_enabled false;
  let r =
    Trace.with_span "outer" (fun () ->
        Trace.instant "ev";
        Trace.count "c" 1;
        Trace.observe "h" 1.0;
        17)
  in
  Alcotest.(check int) "with_span passes the result through" 17 r;
  Alcotest.(check int) "no records" 0 (List.length (Trace.records ()));
  Alcotest.(check int) "no counter" 0 (Trace.counter_value "c");
  Alcotest.(check int) "no histograms" 0 (List.length (Trace.histograms ()))

let test_span_nesting () =
  with_trace @@ fun () ->
  Trace.with_span "outer" (fun () ->
      Trace.instant "ping";
      Trace.with_span "inner" (fun () -> Trace.instant "pong"));
  match Trace.records () with
  | [ ob; ping; ib; pong; ie; oe ] ->
    Alcotest.(check int) "ids are dense" 5 oe.Trace.id;
    Alcotest.(check int) "outer is a root" (-1) ob.Trace.parent;
    Alcotest.(check int) "instant under outer" ob.Trace.id ping.Trace.parent;
    Alcotest.(check int) "inner under outer" ob.Trace.id ib.Trace.parent;
    Alcotest.(check int) "instant under inner" ib.Trace.id pong.Trace.parent;
    Alcotest.(check int) "end names its begin" ib.Trace.id ie.Trace.parent;
    Alcotest.(check string) "end keeps the name" "outer" oe.Trace.name;
    Alcotest.(check bool) "kinds" true
      (ob.Trace.kind = Trace.Span_begin && oe.Trace.kind = Trace.Span_end
      && ping.Trace.kind = Trace.Instant)
  | l -> Alcotest.failf "expected 6 records, got %d" (List.length l)

let test_span_exception () =
  with_trace @@ fun () ->
  (try Trace.with_span "boom" (fun () -> failwith "nope")
   with Failure _ -> ());
  match Trace.records () with
  | [ _; e ] ->
    Alcotest.(check bool) "end record carries raised" true
      (List.mem_assoc "raised" e.Trace.fields)
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l)

let test_ring_drop_oldest () =
  with_trace @@ fun () ->
  Trace.set_capacity 16;
  Alcotest.(check int) "capacity clamps" 16 (Trace.capacity ());
  for i = 0 to 19 do
    Trace.instant (Printf.sprintf "ev%d" i)
  done;
  let rs = Trace.records () in
  Alcotest.(check int) "ring is bounded" 16 (List.length rs);
  Alcotest.(check int) "dropped counted" 4 (Trace.dropped ());
  Alcotest.(check int) "oldest survivor first" 4 (List.hd rs).Trace.id;
  Alcotest.(check int) "newest last" 19
    (List.nth rs 15).Trace.id;
  match Trace.export () with
  | Report.Json.Obj fields ->
    Alcotest.(check (option int)) "export reports dropped" (Some 4)
      (Option.bind (List.assoc_opt "dropped" fields) Report.Json.to_int)
  | _ -> Alcotest.fail "export is not an object"

let test_context_across_domains () =
  with_trace @@ fun () ->
  let sp = Trace.begin_span "fanout" in
  let ctx = Trace.context () in
  let _ =
    Parallel.map ~domains:2
      (fun i ->
        Trace.with_context ctx (fun () ->
            Trace.with_span "worker"
              ~fields:[ ("i", Trace.Int i) ]
              (fun () -> i * i)))
      [ 1; 2; 3; 4 ]
  in
  Trace.end_span sp;
  let workers =
    List.filter
      (fun r -> r.Trace.name = "worker" && r.Trace.kind = Trace.Span_begin)
      (Trace.records ())
  in
  Alcotest.(check int) "one begin per worker" 4 (List.length workers);
  List.iter
    (fun r ->
      Alcotest.(check int) "parent survives the pool" 0 r.Trace.parent)
    workers

let test_counters_and_histograms () =
  with_trace @@ fun () ->
  Trace.count "c.a" 2;
  Trace.count "c.a" 3;
  Trace.count "c.b" 1;
  Trace.observe "h" 2.0;
  Trace.observe "h" 100.0;
  Trace.observe "h" 5e6;
  Alcotest.(check int) "counter accumulates" 5 (Trace.counter_value "c.a");
  Alcotest.(check int) "absent counter is 0" 0 (Trace.counter_value "c.z");
  (match Trace.histograms () with
   | [ ("h", h) ] ->
     Alcotest.(check int) "count" 3 h.Trace.h_count;
     Alcotest.(check bool) "min/max" true
       (h.Trace.h_min = 2.0 && h.Trace.h_max = 5e6);
     let in_bucket le =
       match List.assoc_opt le h.Trace.h_buckets with
       | Some n -> n
       | None -> Alcotest.failf "no bucket <= %f" le
     in
     Alcotest.(check int) "2.0 lands in (1,4]" 1 (in_bucket 4.);
     Alcotest.(check int) "100.0 lands in (64,256]" 1 (in_bucket 256.);
     Alcotest.(check int) "5e6 lands in the overflow bucket" 1
       (in_bucket infinity)
   | l -> Alcotest.failf "expected 1 histogram, got %d" (List.length l));
  (* the metrics document parses and round-trips (infinite bucket bound
     included) *)
  let text = Report.Json.to_string (Trace.metrics ()) in
  match Report.Json.parse text with
  | Error m -> Alcotest.failf "metrics does not parse: %s" m
  | Ok v ->
    Alcotest.(check string) "metrics round-trips" text
      (Report.Json.to_string v)

(* --- the instrumented pipeline, on the tiny two-function kernel --- *)

let base_src =
  {|
int fares = 7;
int fare(int z) {
  int acc = 0;
  int i;
  for (i = 0; i < z; i = i + 1)
    acc = acc + fares;
  return acc;
}
int churn(int n) {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1)
    acc = acc + fare(3);
  return acc;
}
|}

let boot src =
  let tree = Tree.of_list [ ("k/t.c", src) ] in
  let build = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree in
  let img = Image.link_exn ~base:0x100000 (Kbuild.objects build) in
  (tree, img, Machine.create img)

let replace old_s new_s s =
  let rec find i =
    if i + String.length old_s > String.length s then
      Alcotest.failf "pattern %S not found" old_s
    else if String.sub s i (String.length old_s) = old_s then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ new_s
  ^ String.sub s (i + String.length old_s)
      (String.length s - i - String.length old_s)

let patched_fare tree =
  Tree.add tree "k/t.c"
    (replace "acc = acc + fares;" "acc = acc + fares + 1;"
       (Option.get (Tree.find tree "k/t.c")))

let mk_update ~id tree tree' =
  match
    Create.create
      { source = tree; patch = Diff.diff_trees tree tree'; update_id = id;
        description = id }
  with
  | Ok c -> c.update
  | Error e -> Alcotest.failf "create: %a" Create.pp_error e

let test_apply_spans () =
  with_trace @@ fun () ->
  let tree, _img, m = boot base_src in
  Trace.set_clock (fun () -> Machine.instructions_retired m);
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let ap = Apply.init m in
  (match Apply.apply ap u with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "apply: %a" Apply.pp_error e);
  let names =
    List.filter_map
      (fun r ->
        if r.Trace.kind = Trace.Span_begin then Some r.Trace.name else None)
      (Trace.records ())
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " span present") true (List.mem n names))
    [ "create"; "create.unit"; "runpre.match_helper"; "apply";
      "apply.step.allocate"; "apply.step.link"; "apply.step.quiesce";
      "apply.step.trampoline"; "apply.step.commit" ];
  (* every apply.step span is a child of the apply span *)
  let apply_begin =
    List.find (fun r -> r.Trace.name = "apply") (Trace.records ())
  in
  List.iter
    (fun r ->
      if
        r.Trace.kind = Trace.Span_begin
        && String.starts_with ~prefix:"apply.step." r.Trace.name
      then
        Alcotest.(check int)
          (r.Trace.name ^ " under apply")
          apply_begin.Trace.id r.Trace.parent)
    (Trace.records ());
  Alcotest.(check int) "trampoline counted" 1
    (Trace.counter_value "apply.trampolines");
  Alcotest.(check bool) "match attempts counted" true
    (Trace.counter_value "runpre.match_attempts" > 0)

let test_runpre_reject_trace () =
  (* corrupt one byte of fare's running code: run-pre matching must
     reject the candidate and the trace must carry the §4 diagnostic —
     the candidate address and the byte offset of first divergence *)
  with_trace @@ fun () ->
  let tree, img, m = boot base_src in
  Trace.set_clock (fun () -> Machine.instructions_retired m);
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let entry = (Option.get (Image.lookup_global img "fare")).Image.addr in
  let byte = Machine.read_u8 m entry in
  Machine.write_bytes m entry (Bytes.make 1 (Char.chr (byte lxor 0x01)));
  let ap = Apply.init m in
  (match Apply.apply ap u with
   | Error (Apply.Code_mismatch _) -> ()
   | Ok _ -> Alcotest.fail "corrupted code was accepted"
   | Error e -> Alcotest.failf "unexpected error: %a" Apply.pp_error e);
  let rejected =
    List.filter
      (fun r ->
        r.Trace.name = "runpre.candidate"
        && List.assoc_opt "accepted" r.Trace.fields = Some (Trace.Bool false))
      (Trace.records ())
  in
  Alcotest.(check bool) "a rejection was traced" true (rejected <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "names the candidate address" true
        (List.mem_assoc "addr" r.Trace.fields);
      Alcotest.(check bool) "carries the divergence offset" true
        (List.mem_assoc "pre_off" r.Trace.fields
        && List.mem_assoc "run_addr" r.Trace.fields
        && List.mem_assoc "reason" r.Trace.fields))
    rejected;
  let rejects =
    List.filter
      (fun (name, _) ->
        String.starts_with ~prefix:"runpre.reject." name)
      (Trace.counters ())
  in
  Alcotest.(check bool) "rejection reason classified" true (rejects <> [])

(* one manager run over the two-function kernel, traced; returns the
   exported trace text *)
let traced_manager_run () =
  Trace.reset ();
  Trace.set_capacity 16384;
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    (fun () ->
      let tree, _img, m = boot base_src in
      Trace.set_clock (fun () -> Machine.instructions_retired m);
      let u = mk_update ~id:"fare" tree (patched_fare tree) in
      let mgr = Manager.create (Apply.init m) in
      Manager.submit mgr u;
      Manager.run mgr;
      Report.Json.to_string (Trace.export ()))

let test_trace_deterministic () =
  (* no wall clocks, no Random: two identical manager runs must export
     byte-identical traces, like the event log they mirror *)
  let a = traced_manager_run () in
  let b = traced_manager_run () in
  Alcotest.(check string) "replayable trace" a b;
  (* and the export itself is well-formed JSON that round-trips *)
  match Report.Json.parse a with
  | Error m -> Alcotest.failf "trace export does not parse: %s" m
  | Ok v -> Alcotest.(check string) "export round-trips" a
              (Report.Json.to_string v)

let test_manager_events_mirrored () =
  with_trace @@ fun () ->
  let tree, _img, m = boot base_src in
  Trace.set_clock (fun () -> Machine.instructions_retired m);
  let u = mk_update ~id:"fare" tree (patched_fare tree) in
  let mgr = Manager.create (Apply.init m) in
  Manager.submit mgr u;
  Manager.run mgr;
  let trace_names =
    List.filter_map
      (fun r ->
        if String.starts_with ~prefix:"manager." r.Trace.name then
          Some r.Trace.name
        else None)
      (Trace.records ())
  in
  (* every typed event has a mirrored trace instant, same serializer *)
  List.iter
    (fun (e : Manager.Event.t) ->
      let name = "manager." ^ Manager.Event.kind_name e.kind in
      Alcotest.(check bool) (name ^ " mirrored") true
        (List.mem name trace_names))
    (Manager.events mgr);
  List.iter
    (fun (e : Manager.Event.t) ->
      match Manager.event_json e with
      | Report.Json.Obj fields ->
        Alcotest.(check bool) "event_json uses the record shape" true
          (List.mem_assoc "clock" fields && List.mem_assoc "name" fields
          && List.mem_assoc "fields" fields)
      | _ -> Alcotest.fail "event_json is not an object")
    (Manager.events mgr)

let suite =
  [
    ( "trace",
      [
        t "disabled tracing is a no-op" test_disabled_is_noop;
        t "span nesting and parent ids" test_span_nesting;
        t "raising spans are recorded" test_span_exception;
        t "ring buffer drops oldest" test_ring_drop_oldest;
        t "context survives the domain pool" test_context_across_domains;
        t "counters and histograms" test_counters_and_histograms;
        t "apply pipeline is instrumented" test_apply_spans;
        t "run-pre rejection carries the diagnostic"
          test_runpre_reject_trace;
        t "trace export is deterministic" test_trace_deterministic;
        t "manager events are mirrored" test_manager_events_mirrored;
      ] );
  ]
