(* Update-file format robustness: round-trips over every corpus update,
   graceful rejection of corrupted inputs, and apply-equivalence of a
   deserialised update. *)

module Update = Ksplice.Update
module Create = Ksplice.Create
module Apply = Ksplice.Apply

let t name f = Alcotest.test_case name `Quick f

let corpus_updates =
  lazy
    (let base = Corpus.Base_kernel.tree () in
     List.filter_map
       (fun (cve : Corpus.Cve.t) ->
         match
           Create.create
             { source = base; patch = Corpus.Cve.hot_patch cve base;
               update_id = cve.id; description = cve.desc }
         with
         | Ok c -> Some c.update
         | Error _ -> None)
       Corpus.Cve.all)

let test_roundtrip_all () =
  List.iter
    (fun (u : Update.t) ->
      let u' = Update.of_bytes (Update.to_bytes u) in
      Alcotest.(check string) (u.update_id ^ " id") u.update_id u'.update_id;
      Alcotest.(check bool)
        (u.update_id ^ " replaced functions")
        true
        (u.replaced_functions = u'.replaced_functions);
      Alcotest.(check bool)
        (u.update_id ^ " primary bytes")
        true
        (Bytes.equal (Objfile.to_bytes u.primary) (Objfile.to_bytes u'.primary));
      Alcotest.(check int)
        (u.update_id ^ " helpers")
        (List.length u.helpers) (List.length u'.helpers))
    (Lazy.force corpus_updates)

let test_corruption_rejected () =
  let u = List.hd (Lazy.force corpus_updates) in
  let good = Update.to_bytes u in
  let cases =
    [ Bytes.sub good 0 4 (* truncated magic *);
      Bytes.sub good 0 (Bytes.length good / 2) (* truncated body *);
      Bytes.of_string "KSPL1garbage";
      (let b = Bytes.copy good in
       (* corrupt a length field just past the magic *)
       Bytes.set_int32_le b 5 0x7fffffffl;
       b) ]
  in
  List.iteri
    (fun i b ->
      Alcotest.(check bool)
        (Printf.sprintf "corruption %d rejected" i)
        true
        (try
           ignore (Update.of_bytes b);
           false
         with Failure _ -> true))
    cases

let test_deserialised_update_applies () =
  let u =
    List.find
      (fun (u : Update.t) -> u.update_id = "CVE-2006-2451")
      (Lazy.force corpus_updates)
  in
  let u' = Update.of_bytes (Update.to_bytes u) in
  let b = Corpus.Boot.boot () in
  let mgr = Apply.init b.machine in
  (match Apply.apply mgr u' with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "deserialised apply: %a" Apply.pp_error e);
  let e = Option.get (Corpus.Exploits.find "CVE-2006-2451") in
  Alcotest.(check bool) "exploit blocked by deserialised update" false
    (e.run b).succeeded

(* --- store-backed (KSPL2) serialisation --- *)

let test_store_roundtrip_all () =
  let store = Store.create ~name:"upd-test" () in
  List.iter
    (fun (u : Update.t) ->
      let b = Update.to_bytes_store store u in
      match Update.of_bytes_store store b with
      | Error m -> Alcotest.failf "%s: %s" u.update_id m
      | Ok u' ->
        Alcotest.(check string) (u.update_id ^ " id") u.update_id u'.update_id;
        Alcotest.(check bool)
          (u.update_id ^ " primary bytes")
          true
          (Bytes.equal (Objfile.to_bytes u.primary)
             (Objfile.to_bytes u'.primary));
        Alcotest.(check bool)
          (u.update_id ^ " helper bytes")
          true
          (List.for_all2
             (fun h h' ->
               Bytes.equal (Objfile.to_bytes h) (Objfile.to_bytes h'))
             u.helpers u'.helpers))
    (Lazy.force corpus_updates)

let test_store_dedups_helpers () =
  (* corpus updates share the base kernel: serialising them all through
     one store must intern each common helper object exactly once *)
  let store = Store.create ~name:"upd-dedup" () in
  let updates = Lazy.force corpus_updates in
  List.iter (fun u -> ignore (Update.to_bytes_store store u)) updates;
  let st = Store.stats store in
  Alcotest.(check bool) "helpers dedup across updates" true
    (st.Store.dedup_hits > 0 && st.Store.bytes_deduped > 0)

let test_legacy_readable_by_store_reader () =
  let store = Store.create ~name:"upd-legacy" () in
  let u = List.hd (Lazy.force corpus_updates) in
  match Update.of_bytes_store store (Update.to_bytes u) with
  | Ok u' -> Alcotest.(check string) "id" u.update_id u'.update_id
  | Error m -> Alcotest.failf "KSPL1 must stay readable: %s" m

let test_plain_reader_refuses_kspl2 () =
  let store = Store.create ~name:"upd-refuse" () in
  let u = List.hd (Lazy.force corpus_updates) in
  let b = Update.to_bytes_store store u in
  (match Update.of_bytes b with
  | _ -> Alcotest.fail "of_bytes must refuse KSPL2"
  | exception Failure m ->
    let needle = "of_bytes_store" in
    let rec has i =
      i + String.length needle <= String.length m
      && (String.sub m i (String.length needle) = needle || has (i + 1))
    in
    Alcotest.(check bool) "message names of_bytes_store" true (has 0));
  (* a KSPL2 file against a store missing its blobs fails cleanly *)
  let empty = Store.create ~name:"upd-empty" () in
  match Update.of_bytes_store empty b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a missing-blob error"

let suite =
  [
    ( "update-format",
      [
        t "roundtrip all corpus updates" test_roundtrip_all;
        t "corruption rejected" test_corruption_rejected;
        t "deserialised update applies" test_deserialised_update_applies;
        t "store-backed roundtrip (KSPL2)" test_store_roundtrip_all;
        t "store dedups shared helpers" test_store_dedups_helpers;
        t "legacy KSPL1 readable by store reader"
          test_legacy_readable_by_store_reader;
        t "plain reader refuses KSPL2" test_plain_reader_refuses_kspl2;
      ] );
  ]
