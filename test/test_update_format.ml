(* Update-file format robustness: round-trips over every corpus update,
   graceful rejection of corrupted inputs, and apply-equivalence of a
   deserialised update. *)

module Update = Ksplice.Update
module Create = Ksplice.Create
module Apply = Ksplice.Apply

let t name f = Alcotest.test_case name `Quick f

let corpus_updates =
  lazy
    (let base = Corpus.Base_kernel.tree () in
     List.filter_map
       (fun (cve : Corpus.Cve.t) ->
         match
           Create.create
             { source = base; patch = Corpus.Cve.hot_patch cve base;
               update_id = cve.id; description = cve.desc }
         with
         | Ok c -> Some c.update
         | Error _ -> None)
       Corpus.Cve.all)

let test_roundtrip_all () =
  List.iter
    (fun (u : Update.t) ->
      let u' = Update.of_bytes_exn (Update.to_bytes u) in
      Alcotest.(check string) (u.update_id ^ " id") u.update_id u'.update_id;
      Alcotest.(check bool)
        (u.update_id ^ " replaced functions")
        true
        (u.replaced_functions = u'.replaced_functions);
      Alcotest.(check bool)
        (u.update_id ^ " primary bytes")
        true
        (Bytes.equal (Objfile.to_bytes u.primary) (Objfile.to_bytes u'.primary));
      Alcotest.(check int)
        (u.update_id ^ " helpers")
        (List.length u.helpers) (List.length u'.helpers))
    (Lazy.force corpus_updates)

let test_corruption_rejected () =
  let u = List.hd (Lazy.force corpus_updates) in
  let good = Update.to_bytes u in
  let cases =
    [ Bytes.sub good 0 4 (* truncated magic *);
      Bytes.sub good 0 (Bytes.length good / 2) (* truncated body *);
      Bytes.of_string "KSPL1garbage";
      (let b = Bytes.copy good in
       (* corrupt a length field just past the magic *)
       Bytes.set_int32_le b 5 0x7fffffffl;
       b) ]
  in
  List.iteri
    (fun i b ->
      Alcotest.(check bool)
        (Printf.sprintf "corruption %d rejected" i)
        true
        (Result.is_error (Update.of_bytes b)))
    cases

let test_deserialised_update_applies () =
  let u =
    List.find
      (fun (u : Update.t) -> u.update_id = "CVE-2006-2451")
      (Lazy.force corpus_updates)
  in
  let u' = Update.of_bytes_exn (Update.to_bytes u) in
  let b = Corpus.Boot.boot () in
  let mgr = Apply.init b.machine in
  (match Apply.apply mgr u' with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "deserialised apply: %a" Apply.pp_error e);
  let e = Option.get (Corpus.Exploits.find "CVE-2006-2451") in
  Alcotest.(check bool) "exploit blocked by deserialised update" false
    (e.run b).succeeded

(* --- store-backed (KSPL2) serialisation --- *)

let test_store_roundtrip_all () =
  let store = Store.create ~name:"upd-test" () in
  List.iter
    (fun (u : Update.t) ->
      let b = Update.to_bytes_store store u in
      match Update.of_bytes_store store b with
      | Error e ->
        Alcotest.failf "%s: %s" u.update_id (Update.decode_error_to_string e)
      | Ok u' ->
        Alcotest.(check string) (u.update_id ^ " id") u.update_id u'.update_id;
        Alcotest.(check bool)
          (u.update_id ^ " primary bytes")
          true
          (Bytes.equal (Objfile.to_bytes u.primary)
             (Objfile.to_bytes u'.primary));
        Alcotest.(check bool)
          (u.update_id ^ " helper bytes")
          true
          (List.for_all2
             (fun h h' ->
               Bytes.equal (Objfile.to_bytes h) (Objfile.to_bytes h'))
             u.helpers u'.helpers))
    (Lazy.force corpus_updates)

let test_store_dedups_helpers () =
  (* corpus updates share the base kernel: serialising them all through
     one store must intern each common helper object exactly once *)
  let store = Store.create ~name:"upd-dedup" () in
  let updates = Lazy.force corpus_updates in
  List.iter (fun u -> ignore (Update.to_bytes_store store u)) updates;
  let st = Store.stats store in
  Alcotest.(check bool) "helpers dedup across updates" true
    (st.Store.dedup_hits > 0 && st.Store.bytes_deduped > 0)

let test_legacy_readable_by_store_reader () =
  let store = Store.create ~name:"upd-legacy" () in
  let u = List.hd (Lazy.force corpus_updates) in
  match Update.of_bytes_store store (Update.to_bytes u) with
  | Ok u' -> Alcotest.(check string) "id" u.update_id u'.update_id
  | Error e ->
    Alcotest.failf "KSPL1 must stay readable: %s"
      (Update.decode_error_to_string e)

let test_plain_reader_refuses_kspl2 () =
  let store = Store.create ~name:"upd-refuse" () in
  let u = List.hd (Lazy.force corpus_updates) in
  let b = Update.to_bytes_store store u in
  (match Update.of_bytes b with
  | Ok _ -> Alcotest.fail "of_bytes must refuse KSPL2"
  | Error e ->
    let m = Update.decode_error_to_string e in
    let needle = "of_bytes_store" in
    let rec has i =
      i + String.length needle <= String.length m
      && (String.sub m i (String.length needle) = needle || has (i + 1))
    in
    Alcotest.(check bool) "message names of_bytes_store" true (has 0));
  (* a KSPL2 file against a store missing its blobs fails cleanly *)
  let empty = Store.create ~name:"upd-empty" () in
  match Update.of_bytes_store empty b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a missing-blob error"

(* --- cumulative (KSPL3) serialisation --- *)

let cumulative_of (u : Update.t) =
  { u with
    Update.supersedes = [ "CVE-a"; "CVE-b" ];
    shadow_ctors = [ "ctor@kernel/x.c" ];
    shadow_dtors = [ "dtor@kernel/x.c" ] }

let test_ordinary_stays_kspl2 () =
  (* byte-stability: an update without cumulative records must encode
     exactly as before KSPL3 existed *)
  let store = Store.create ~name:"upd-k2" () in
  let u = List.hd (Lazy.force corpus_updates) in
  let b = Update.to_bytes_store store u in
  Alcotest.(check string) "magic" "KSPL2" (Bytes.sub_string b 0 5);
  Alcotest.(check bool) "not cumulative" false (Update.is_cumulative u);
  Alcotest.(check (list string)) "supersedes nothing" []
    (Update.supersedes_of_bytes b)

let test_kspl3_roundtrip () =
  let store = Store.create ~name:"upd-k3" () in
  let u = cumulative_of (List.hd (Lazy.force corpus_updates)) in
  let b = Update.to_bytes_store store u in
  Alcotest.(check string) "magic" "KSPL3" (Bytes.sub_string b 0 5);
  Alcotest.(check (list string)) "supersedes from bytes alone"
    u.supersedes (Update.supersedes_of_bytes b);
  match Update.of_bytes_store store b with
  | Error e -> Alcotest.fail (Update.decode_error_to_string e)
  | Ok u' ->
    Alcotest.(check bool) "cumulative" true (Update.is_cumulative u');
    Alcotest.(check (list string)) "supersedes" u.supersedes u'.supersedes;
    Alcotest.(check (list string)) "ctors" u.shadow_ctors u'.shadow_ctors;
    Alcotest.(check (list string)) "dtors" u.shadow_dtors u'.shadow_dtors;
    Alcotest.(check bool) "primary bytes" true
      (Bytes.equal (Objfile.to_bytes u.primary) (Objfile.to_bytes u'.primary))

let test_kspl1_roundtrips_cumulative_fields () =
  let u = cumulative_of (List.hd (Lazy.force corpus_updates)) in
  let u' = Update.of_bytes_exn (Update.to_bytes u) in
  Alcotest.(check (list string)) "supersedes" u.supersedes u'.supersedes;
  Alcotest.(check (list string)) "ctors" u.shadow_ctors u'.shadow_ctors;
  Alcotest.(check (list string)) "dtors" u.shadow_dtors u'.shadow_dtors

(* --- decoder totality: no exception reachable from arbitrary bytes ---

   Every truncated prefix and every single-byte flip of a valid blob —
   self-contained KSPL1, store-backed KSPL2, cumulative KSPL3 — must
   yield [Ok] or [Error], never raise. *)

let blobs =
  lazy
    (let store = Store.create ~name:"upd-total" () in
     let u = List.hd (Lazy.force corpus_updates) in
     let cu = cumulative_of u in
     [ ("KSPL1", Update.to_bytes u, `Plain);
       ("KSPL2", Update.to_bytes_store store u, `Store store);
       ("KSPL3", Update.to_bytes_store store cu, `Store store) ])

let decode_total (b : Bytes.t) = function
  | `Plain -> (
    match Update.of_bytes b with
    | Ok _ -> `Ok
    | Error _ -> `Error
    | exception e -> `Raised e)
  | `Store store -> (
    match Update.of_bytes_store store b with
    | Ok _ -> `Ok
    | Error _ -> `Error
    | exception e -> `Raised e)

let test_every_prefix_rejected () =
  List.iter
    (fun (fmt, b, how) ->
      for n = 0 to Bytes.length b - 1 do
        match decode_total (Bytes.sub b 0 n) how with
        | `Error -> ()
        | `Ok -> Alcotest.failf "%s: prefix of %d bytes parsed" fmt n
        | `Raised e ->
          Alcotest.failf "%s: prefix of %d bytes raised %s" fmt n
            (Printexc.to_string e)
      done;
      (* supersedes_of_bytes shares the totality guarantee *)
      for n = 0 to Bytes.length b - 1 do
        ignore (Update.supersedes_of_bytes (Bytes.sub b 0 n) : string list)
      done)
    (Lazy.force blobs)

let prop_byte_flip_total =
  let open QCheck2.Gen in
  QCheck2.Test.make ~name:"update decode is total under byte flips"
    ~count:600
    (tup3 (int_range 0 2) (int_range 0 100_000) (int_range 1 255))
    (fun (which, pos, flip) ->
      let _, b, how = List.nth (Lazy.force blobs) which in
      let b = Bytes.copy b in
      let pos = pos mod Bytes.length b in
      Bytes.set_uint8 b pos (Bytes.get_uint8 b pos lxor flip);
      match decode_total b how with
      | `Ok | `Error ->
        (match Update.supersedes_of_bytes b with
         | (_ : string list) -> true
         | exception _ -> false)
      | `Raised _ -> false)

let suite =
  [
    ( "update-format",
      [
        t "roundtrip all corpus updates" test_roundtrip_all;
        t "corruption rejected" test_corruption_rejected;
        t "deserialised update applies" test_deserialised_update_applies;
        t "store-backed roundtrip (KSPL2)" test_store_roundtrip_all;
        t "store dedups shared helpers" test_store_dedups_helpers;
        t "legacy KSPL1 readable by store reader"
          test_legacy_readable_by_store_reader;
        t "plain reader refuses KSPL2" test_plain_reader_refuses_kspl2;
        t "ordinary update stays byte-identical KSPL2"
          test_ordinary_stays_kspl2;
        t "cumulative roundtrip (KSPL3)" test_kspl3_roundtrip;
        t "KSPL1 carries cumulative fields"
          test_kspl1_roundtrips_cumulative_fields;
        t "every truncated prefix rejected" test_every_prefix_rejected;
        QCheck_alcotest.to_alcotest prop_byte_flip_total;
      ] );
  ]
