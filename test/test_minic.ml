(* End-to-end MiniC compiler tests: compile, link, boot, execute on the
   VM, and check results. Every test runs under both build flavours (the
   distro-style "run" build and the Ksplice-style function-sections "pre"
   build) — the two must agree observably, which is the determinism
   run-pre matching relies on. *)

module Driver = Minic.Driver
module Image = Klink.Image
module Machine = Kernel.Machine

let check = Alcotest.check
let int32_c = Alcotest.int32

let compile ?(opts = Driver.run_build) ?(unit_name = "t.c") src =
  (Driver.compile_exn ~options:opts ~unit_name src).obj

let boot objs =
  let img = Image.link_exn ~base:0x100000 objs in
  (img, Machine.create img)

let call m img fn args =
  let sym =
    match Image.lookup_global img fn with
    | Some s -> s
    | None -> Alcotest.failf "symbol %s not found" fn
  in
  match Machine.call_function m ~addr:sym.addr ~args with
  | Ok v -> v
  | Error f -> Alcotest.failf "%s faulted: %a" fn Machine.pp_fault f

(* run [fn args] in source [src] under both build flavours and require
   identical results *)
let exec ?unit_name src fn args =
  let results =
    List.map
      (fun opts ->
        let img, m = boot [ compile ~opts ?unit_name src ] in
        call m img fn args)
      [ Driver.run_build; Driver.pre_build ]
  in
  match results with
  | [ a; b ] ->
    check int32_c (fn ^ ": run/pre builds agree") a b;
    a
  | _ -> assert false

let t name f = Alcotest.test_case name `Quick f

let test_arith () =
  let src = "int add(int a, int b) { return a + b * 2; }" in
  check int32_c "add" 7l (exec src "add" [ 3l; 2l ])

let test_precedence () =
  let src = "int f(int a) { return 2 + a * 3 - (a - 1) / 2; }" in
  check int32_c "precedence" 15l (exec src "f" [ 5l ])

let test_recursion () =
  let src = "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }" in
  check int32_c "fact 6" 720l (exec src "fact" [ 6l ])

let test_loops () =
  let src =
    {|
int sum_to(int n) {
  int s = 0;
  int i;
  for (i = 1; i <= n; i = i + 1)
    s = s + i;
  return s;
}
int count_odd(int n) {
  int c = 0;
  int i = 0;
  while (i < n) {
    i = i + 1;
    if (i % 2 == 0)
      continue;
    c = c + 1;
    if (c > 100)
      break;
  }
  return c;
}
|}
  in
  check int32_c "sum 1..10" 55l (exec src "sum_to" [ 10l ]);
  check int32_c "odds below 9" 5l (exec src "count_odd" [ 9l ])

let test_globals () =
  let src =
    {|
int counter = 40;
static int hidden = 100;
int bump(int by) { counter = counter + by; return counter; }
int get_hidden() { return hidden; }
|}
  in
  check int32_c "global rmw" 42l (exec src "bump" [ 2l ]);
  check int32_c "static global" 100l (exec src "get_hidden" [])

let test_static_local () =
  let src =
    {|
int next_id() {
  static int id = 7;
  id = id + 1;
  return id;
}
int twice() { next_id(); return next_id(); }
|}
  in
  check int32_c "static local persists" 9l (exec src "twice" [])

let test_pointers () =
  let src =
    {|
void swap(int *a, int *b) {
  int tmp = *a;
  *a = *b;
  *b = tmp;
}
int use() {
  int x = 3;
  int y = 9;
  swap(&x, &y);
  return x * 10 + y;
}
|}
  in
  check int32_c "swap" 93l (exec src "use" [])

let test_arrays () =
  let src =
    {|
int tab[4] = { 10, 20, 30, 40 };
int sum_tab() {
  int s = 0;
  int i;
  for (i = 0; i < 4; i = i + 1)
    s = s + tab[i];
  return s;
}
int local_buf(int n) {
  int buf[8];
  int i;
  for (i = 0; i < 8; i = i + 1)
    buf[i] = i * n;
  return buf[3] + buf[7];
}
|}
  in
  check int32_c "global array" 100l (exec src "sum_tab" []);
  check int32_c "local array" 20l (exec src "local_buf" [ 2l ])

let test_structs () =
  let src =
    {|
struct point { int x; int y; char tag; };
struct point origin;
int set_and_get(int a, int b) {
  struct point *p = &origin;
  p->x = a;
  p->y = b;
  p->tag = 'z';
  return p->x * 100 + p->y + origin.tag;
}
|}
  in
  check int32_c "struct fields" (Int32.of_int ((3 * 100) + 4 + Char.code 'z'))
    (exec src "set_and_get" [ 3l; 4l ])

let test_char_widening () =
  (* the §3.1 implicit-cast example: a char parameter truncates in the
     caller *)
  let src =
    {|
int identity_c(char c) { return c; }
int probe(int v) { return identity_c(v); }
|}
  in
  check int32_c "char truncates 300 to 44" 44l (exec src "probe" [ 300l ]);
  check int32_c "char sign-extends" (-1l) (exec src "probe" [ 255l ])

let test_short_widening () =
  let src =
    {|
int identity_s(short s) { return s; }
int probe(int v) { return identity_s(v); }
|}
  in
  check int32_c "short wraps" 0x2345l (exec src "probe" [ 0x12345l ]);
  check int32_c "short sign-extends" (-1l) (exec src "probe" [ 0xffffl ])

let test_char_return () =
  let src =
    {|
char low_byte(int v) { return v; }
int probe(int v) { return low_byte(v); }
|}
  in
  check int32_c "char return narrows" 0x44l (exec src "probe" [ 0x1244l ])

let test_char_memory () =
  let src =
    {|
char cbuf[4];
int roundtrip(int v) {
  cbuf[1] = v;
  return cbuf[1];
}
|}
  in
  check int32_c "char memory store/load" (-46l) (exec src "roundtrip" [ 210l ])

let test_strings () =
  let src =
    {|
int first_char() {
  char *s = "hello";
  return s[0] + s[4];
}
|}
  in
  check int32_c "string literal"
    (Int32.of_int (Char.code 'h' + Char.code 'o'))
    (exec src "first_char" [])

let test_short_circuit () =
  let src =
    {|
int calls = 0;
int bump() { calls = calls + 1; return 1; }
int and_false() { calls = 0; if (0 && bump()) return -1; return calls; }
int or_true() { calls = 0; if (1 || bump()) return calls; return -1; }
int and_true() { calls = 0; if (1 && bump()) return calls; return -1; }
|}
  in
  check int32_c "&& short-circuits" 0l (exec src "and_false" []);
  check int32_c "|| short-circuits" 0l (exec src "or_true" []);
  check int32_c "&& evaluates rhs" 1l (exec src "and_true" [])

let test_shifts_and_bits () =
  let src =
    {|
int f(int a, int b) {
  return ((a << 4) | (b & 15)) ^ (a >> 1);
}
|}
  in
  check int32_c "bit ops" (Int32.of_int (((6 lsl 4) lor (27 land 15)) lxor 3))
    (exec src "f" [ 6l; 27l ])

let test_div_mod () =
  let src = "int f(int a, int b) { return a / b * 100 + a % b; }" in
  check int32_c "div/mod" 302l (exec src "f" [ 17l; 5l ]);
  check int32_c "negative div" (-302l) (exec src "f" [ -17l; 5l ])

let test_comparisons () =
  let src =
    {|
int f(int a, int b) {
  return (a < b) + (a <= b) * 2 + (a > b) * 4 + (a >= b) * 8
       + (a == b) * 16 + (a != b) * 32;
}
|}
  in
  check int32_c "a<b" (Int32.of_int (1 + 2 + 32)) (exec src "f" [ 1l; 2l ]);
  check int32_c "a=b" (Int32.of_int (2 + 8 + 16)) (exec src "f" [ 2l; 2l ]);
  check int32_c "a>b" (Int32.of_int (4 + 8 + 32)) (exec src "f" [ 3l; 2l ])

let test_function_pointer () =
  let src =
    {|
int triple(int x) { return x * 3; }
int call_it(int v) {
  int fp = &triple;
  return fp(v) + 1;
}
|}
  in
  check int32_c "indirect call" 22l (exec src "call_it" [ 7l ])

let test_inlining_semantics () =
  (* probe() calls an automatically-inlined accessor; behaviour must be
     unchanged, and the decision must be recorded *)
  let src =
    {|
int level = 5;
int get_level() { return level; }
int probe(int v) { return get_level() * v; }
|}
  in
  check int32_c "inlined accessor" 15l (exec src "probe" [ 3l ]);
  let { Driver.inline_decisions; _ } =
    Driver.compile_exn ~options:Driver.run_build ~unit_name:"t.c" src
  in
  Alcotest.(check bool)
    "decision recorded" true
    (List.exists
       (fun (d : Minic.Inline.decision) ->
         d.caller = "probe" && d.callee = "get_level")
       inline_decisions)

let test_inlining_no_keyword () =
  (* §4.2: inlining happens without the inline keyword; an explicitly
     inline function of larger size also gets inlined *)
  let src =
    {|
inline int clamp(int v) {
  int lo = 0;
  int hi = 100;
  if (v < lo) { v = lo; }
  if (v > hi) { v = hi; }
  return v;
}
int probe(int v) { return clamp(v); }
|}
  in
  ignore (exec src "probe" [ 150l ]);
  let { Driver.inline_decisions; _ } =
    Driver.compile_exn ~options:Driver.run_build ~unit_name:"t.c" src
  in
  Alcotest.(check bool)
    "explicit inline honoured" true
    (List.exists
       (fun (d : Minic.Inline.decision) -> d.callee = "clamp")
       inline_decisions)
  ;
  check int32_c "clamped" 100l (exec src "probe" [ 150l ]);
  check int32_c "identity" 42l (exec src "probe" [ 42l ])

let test_inline_out_of_line_copy () =
  (* the inlined function must still exist out of line (symbol census) *)
  let src = {|
int get() { return 3; }
int probe() { return get(); }
|} in
  let obj = compile src in
  Alcotest.(check bool)
    "out-of-line copy emitted" true
    (Option.is_some (Objfile.find_symbol obj "get"))

let test_ambiguous_statics_link () =
  (* two units with identically-named static symbols — both data and
     function — must link and behave independently (the CVE-2005-4639
     "debug" situation from §6.3) *)
  let a =
    compile ~unit_name:"dst.c"
      {|
static int debug = 1;
int dst_get_debug() { return debug; }
|}
  in
  let b =
    compile ~unit_name:"dst_ca.c"
      {|
static int debug = 2;
int ca_get_debug() { return debug; }
|}
  in
  let img, m = boot [ a; b ] in
  check int32_c "dst debug" 1l (call m img "dst_get_debug" []);
  check int32_c "ca debug" 2l (call m img "ca_get_debug" []);
  let all_debug = Image.lookup img "debug" in
  Alcotest.(check int) "two debug symbols in kallsyms" 2
    (List.length all_debug)

let test_cross_unit_calls () =
  let a =
    compile ~unit_name:"a.c"
      {|
extern int base;
int helper(int x);
int entry(int v) { return helper(v) + base; }
|}
  in
  let b =
    compile ~unit_name:"b.c" {|
int base = 100;
int helper(int x) { return x * 2; }
|}
  in
  let img, m = boot [ a; b ] in
  check int32_c "cross-unit" 114l (call m img "entry" [ 7l ])

let test_sizeof () =
  let src =
    {|
struct mixed { char a; int b; short c; char d; };
int sz_int() { return sizeof(int); }
int sz_struct() { return sizeof(struct mixed); }
int sz_arr() { return sizeof(int) * 3; }
|}
  in
  check int32_c "sizeof int" 4l (exec src "sz_int" []);
  (* char(1) pad(3) int(4) short(2) char(1) pad(1) -> 12 *)
  check int32_c "sizeof struct" 12l (exec src "sz_struct" []);
  check int32_c "sizeof arr" 12l (exec src "sz_arr" [])

let test_casts () =
  let src =
    {|
int f(int v) { return (char)v; }
int g(int v) { return (short)v; }
|}
  in
  check int32_c "(char) cast" 44l (exec src "f" [ 300l ]);
  check int32_c "(short) cast" (-1l) (exec src "g" [ 0xffffl ])

let test_switch () =
  let src =
    {|
int classify(int v) {
  int r = 0;
  switch (v) {
  case 0:
    r = 100;
    break;
  case 1:
  case 2:
    r = 200;
    break;
  case 3:
    r = r + 1;      /* falls through */
  case 4:
    r = r + 300;
    break;
  default:
    r = -1;
  }
  return r;
}
|}
  in
  check int32_c "case 0" 100l (exec src "classify" [ 0l ]);
  check int32_c "case 1 shares body" 200l (exec src "classify" [ 1l ]);
  check int32_c "case 2 shares body" 200l (exec src "classify" [ 2l ]);
  check int32_c "case 3 falls through" 301l (exec src "classify" [ 3l ]);
  check int32_c "case 4" 300l (exec src "classify" [ 4l ]);
  check int32_c "default" (-1l) (exec src "classify" [ 9l ]);
  check int32_c "default negative" (-1l) (exec src "classify" [ -5l ])

let test_switch_in_loop () =
  (* break binds to the switch, continue to the loop *)
  let src =
    {|
int tally(int n) {
  int acc = 0;
  int i;
  for (i = 0; i < n; i++) {
    switch (i % 3) {
    case 0:
      continue;
    case 1:
      acc += 10;
      break;
    default:
      acc += 1;
    }
    acc += 100;
  }
  return acc;
}
|}
  in
  (* i=0 continue; i=1 +10+100; i=2 +1+100; i=3 continue; i=4 +10+100 *)
  check int32_c "switch in loop" 321l (exec src "tally" [ 5l ])

let test_do_while () =
  let src =
    {|
int count_digits(int v) {
  int n = 0;
  do {
    n++;
    v = v / 10;
  } while (v != 0);
  return n;
}
|}
  in
  check int32_c "runs at least once" 1l (exec src "count_digits" [ 0l ]);
  check int32_c "12345 has 5 digits" 5l (exec src "count_digits" [ 12345l ])

let test_compound_assignment () =
  let src =
    {|
int acc = 0;
int mix(int v) {
  acc = 7;
  acc += v;
  acc -= 1;
  acc *= 2;
  acc |= 1;
  acc ^= 2;
  acc <<= 1;
  acc >>= 1;
  acc &= 255;
  acc %= 100;
  acc /= 2;
  return acc;
}
|}
  in
  let expect =
    let a = ref 7 in
    a := !a + 5; a := !a - 1; a := !a * 2; a := !a lor 1; a := !a lxor 2;
    a := !a lsl 1; a := !a asr 1; a := !a land 255; a := !a mod 100;
    a := !a / 2;
    Int32.of_int !a
  in
  check int32_c "compound ops" expect (exec src "mix" [ 5l ])

let test_incr_decr () =
  let src =
    {|
int spin(int n) {
  int i = 0;
  int hits = 0;
  while (i < n) {
    hits++;
    i++;
  }
  --hits;
  return hits;
}
|}
  in
  check int32_c "increments" 9l (exec src "spin" [ 10l ])

let test_compound_single_eval () =
  (* regression: the lvalue of [op=] is evaluated once; a side-effecting
     index expression used to fire twice under the old desugaring *)
  let src =
    {|
int tab[4] = { 10, 20, 30, 40 };
int calls = 0;
int pick() { calls++; return 2; }
int probe() {
  calls = 0;
  tab[pick()] += 5;
  return tab[2] * 10 + calls;
}
int bump_stmt() {
  calls = 0;
  tab[2] = 30;
  tab[pick()]++;
  return tab[2] * 10 + calls;
}
|}
  in
  check int32_c "op= evaluates index once" 351l (exec src "probe" []);
  check int32_c "statement i++ evaluates index once" 311l
    (exec src "bump_stmt" [])

let test_postfix_value_semantics () =
  (* regression: postfix ++/-- in value position yields the pre-update
     value (the old desugaring gave the pre-form's new value) *)
  let src =
    {|
int tab[3] = { 7, 8, 9 };
int locals() {
  int i = 5;
  int got = i++;
  int j = 9;
  int dec = j--;
  return (got * 10 + i) * 100 + dec * 10 + j;
}
int walk() {
  int *p = tab;
  int first = *p++;
  int second = *p++;
  return first * 10 + second;
}
char c;
int narrow() {
  c = 127;
  int old = c++;
  return old * 1000 + c;
}
|}
  in
  (* got=5 i=6; dec=9 j=8 *)
  check int32_c "postfix on locals" 5698l (exec src "locals" []);
  check int32_c "*p++ walks the array" 78l (exec src "walk" []);
  (* old value is 127; the char wraps to -128 *)
  check int32_c "char postfix narrows after yielding old value"
    (Int32.of_int ((127 * 1000) - 128))
    (exec src "narrow" [])

let test_switch_duplicate_case_rejected () =
  let src =
    "int f(int v) { switch (v) { case 1: return 1; case 1: return 2; } \
     return 0; }"
  in
  Alcotest.(check bool) "duplicate case rejected" true
    (try
       ignore (compile src);
       false
     with Driver.Error _ -> true)

let test_type_errors () =
  let bad =
    [
      "int f() { return undeclared_thing; }";
      "int f() { return g(); }";
      "int f(int a) { int a; return a; }";
      "int f() { break; }";
      "struct s { int x; }; int f(struct s v) { return 0; }";
      "int f() { int x; return x.field; }";
      "int f(int *p) { return *p(); } int g; int h() { return *g; }";
    ]
  in
  List.iter
    (fun src ->
      Alcotest.(check bool)
        ("rejected: " ^ src) true
        (try
           ignore (compile src);
           false
         with Driver.Error _ -> true))
    bad

let test_parse_errors_have_lines () =
  let src = "int f() {\n  return 1 +;\n}" in
  (try
     ignore (compile src);
     Alcotest.fail "expected parse error"
   with Driver.Error m ->
     Alcotest.(check bool) "line in message" true
       (String.length m > 0
        &&
        (* message should carry unit:line *)
        String.split_on_char ':' m |> List.length >= 2))

let test_void_function () =
  let src =
    {|
int log_count = 0;
void note() { log_count = log_count + 1; }
int probe() { note(); note(); return log_count; }
|}
  in
  check int32_c "void calls" 2l (exec src "probe" [])

let test_fault_on_null_deref () =
  let src = "int f() { int *p = 0; return *p; }" in
  let img, m = boot [ compile src ] in
  let sym = Option.get (Image.lookup_global img "f") in
  (match Machine.call_function m ~addr:sym.addr ~args:[] with
   | Error (Machine.Memory_violation _) -> ()
   | Ok _ -> Alcotest.fail "expected fault"
   | Error f -> Alcotest.failf "wrong fault: %a" Machine.pp_fault f)

let test_fault_on_div_zero () =
  let src = "int f(int d) { return 10 / d; }" in
  let img, m = boot [ compile src ] in
  let sym = Option.get (Image.lookup_global img "f") in
  (match Machine.call_function m ~addr:sym.addr ~args:[ 0l ] with
   | Error (Machine.Divide_by_zero _) -> ()
   | _ -> Alcotest.fail "expected divide fault")

(* Property: random arithmetic expressions agree with an OCaml oracle. *)
let prop_arith_oracle =
  let open QCheck2.Gen in
  (* generate a small expression over two variables *)
  let rec gen_e depth =
    if depth = 0 then
      oneof [ map (fun v -> `C (Int32.of_int v)) (int_range (-50) 50);
              return `A; return `B ]
    else
      let sub = gen_e (depth - 1) in
      oneof
        [ map (fun v -> `C (Int32.of_int v)) (int_range (-50) 50);
          return `A; return `B;
          map2 (fun a b -> `Add (a, b)) sub sub;
          map2 (fun a b -> `Sub (a, b)) sub sub;
          map2 (fun a b -> `Mul (a, b)) sub sub;
          map2 (fun a b -> `Lt (a, b)) sub sub;
          map2 (fun a b -> `And (a, b)) sub sub ]
  in
  let rec to_c = function
    | `C v -> Int32.to_string v
    | `A -> "a"
    | `B -> "b"
    | `Add (a, b) -> Printf.sprintf "(%s + %s)" (to_c a) (to_c b)
    | `Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_c a) (to_c b)
    | `Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_c a) (to_c b)
    | `Lt (a, b) -> Printf.sprintf "(%s < %s)" (to_c a) (to_c b)
    | `And (a, b) -> Printf.sprintf "(%s & %s)" (to_c a) (to_c b)
  in
  let rec eval a b = function
    | `C v -> v
    | `A -> a
    | `B -> b
    | `Add (x, y) -> Int32.add (eval a b x) (eval a b y)
    | `Sub (x, y) -> Int32.sub (eval a b x) (eval a b y)
    | `Mul (x, y) -> Int32.mul (eval a b x) (eval a b y)
    | `Lt (x, y) -> if Int32.compare (eval a b x) (eval a b y) < 0 then 1l else 0l
    | `And (x, y) -> Int32.logand (eval a b x) (eval a b y)
  in
  QCheck2.Test.make ~name:"compiled arithmetic matches oracle" ~count:40
    (QCheck2.Gen.tup3 (gen_e 3) (int_range (-100) 100) (int_range (-100) 100))
    (fun (e, a, b) ->
      let src = Printf.sprintf "int f(int a, int b) { return %s; }" (to_c e) in
      let img, m = boot [ compile src ] in
      let sym = Option.get (Image.lookup_global img "f") in
      match
        Machine.call_function m ~addr:sym.addr
          ~args:[ Int32.of_int a; Int32.of_int b ]
      with
      | Ok v -> Int32.equal v (eval (Int32.of_int a) (Int32.of_int b) e)
      | Error _ -> false)

let suite =
  [
    ( "minic",
      [
        t "arith" test_arith;
        t "precedence" test_precedence;
        t "recursion" test_recursion;
        t "loops" test_loops;
        t "globals" test_globals;
        t "static local" test_static_local;
        t "pointers" test_pointers;
        t "arrays" test_arrays;
        t "structs" test_structs;
        t "char widening at call" test_char_widening;
        t "short widening at call" test_short_widening;
        t "char return narrowing" test_char_return;
        t "char memory access" test_char_memory;
        t "string literals" test_strings;
        t "short circuit" test_short_circuit;
        t "shifts and bits" test_shifts_and_bits;
        t "div mod" test_div_mod;
        t "comparisons" test_comparisons;
        t "function pointer" test_function_pointer;
        t "inlining semantics" test_inlining_semantics;
        t "inline keyword" test_inlining_no_keyword;
        t "out-of-line copy" test_inline_out_of_line_copy;
        t "ambiguous statics" test_ambiguous_statics_link;
        t "cross-unit calls" test_cross_unit_calls;
        t "sizeof" test_sizeof;
        t "casts" test_casts;
        t "switch" test_switch;
        t "switch in loop" test_switch_in_loop;
        t "do while" test_do_while;
        t "compound assignment" test_compound_assignment;
        t "increment/decrement" test_incr_decr;
        t "compound assignment single eval" test_compound_single_eval;
        t "postfix value semantics" test_postfix_value_semantics;
        t "duplicate case rejected" test_switch_duplicate_case_rejected;
        t "type errors" test_type_errors;
        t "parse error lines" test_parse_errors_have_lines;
        t "void function" test_void_function;
        t "null deref faults" test_fault_on_null_deref;
        t "div by zero faults" test_fault_on_div_zero;
        QCheck_alcotest.to_alcotest prop_arith_oracle;
      ] );
  ]
