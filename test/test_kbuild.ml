(* Build-system tests: determinism (the property run-pre matching's §4.3
   compiler-version discussion relies on), incremental caching, and
   build metadata. *)

module Tree = Patchfmt.Source_tree

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let tree1 =
  Tree.of_list
    [
      ("a.c", "int x = 1;\nint get_x() { return x; }\n");
      ("b.c", "int helper(int v) { return v * 2; }\n");
      ("e.s", ".text\n.global stub\nstub:\n  ret\n");
      ("README", "not source\n");
    ]

let test_builds_only_sources () =
  let b = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree1 in
  check
    (Alcotest.list Alcotest.string)
    "units" [ "a.c"; "b.c"; "e.s" ]
    (List.map (fun (u : Kbuild.unit_build) -> u.source_name) b.units)

let test_determinism () =
  (* identical source + options => byte-identical objects *)
  let obj_bytes tree =
    let b = Kbuild.build_tree_exn ~options:Minic.Driver.pre_build tree in
    List.map (fun o -> Bytes.to_string (Objfile.to_bytes o)) (Kbuild.objects b)
  in
  check
    (Alcotest.list Alcotest.string)
    "bitwise reproducible" (obj_bytes tree1) (obj_bytes tree1)

let test_cache_physical_reuse () =
  (* unchanged units are the same compiled artifact across builds *)
  let b1 = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree1 in
  let tree2 = Tree.add tree1 "a.c" "int x = 2;\nint get_x() { return x; }\n" in
  let b2 = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree2 in
  let find b n = Option.get (Kbuild.find_unit b n) in
  Alcotest.(check bool)
    "b.c reused physically" true
    (find b1 "b.c" == find b2 "b.c");
  Alcotest.(check bool)
    "a.c recompiled" true
    (not (find b1 "a.c" == find b2 "a.c"))

let test_options_invalidate_cache () =
  let run = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree1 in
  let pre = Kbuild.build_tree_exn ~options:Minic.Driver.pre_build tree1 in
  let sections b n =
    List.map
      (fun (s : Objfile.Section.t) -> s.name)
      (Option.get (Kbuild.find_unit b n)).obj.sections
  in
  Alcotest.(check bool)
    "different section layout per option set" true
    (sections run "a.c" <> sections pre "a.c")

let test_inline_metadata () =
  let tree =
    Tree.of_list
      [ ("m.c",
         "int base = 4;\nint get_base() { return base; }\n\
          int calc(int v) { return get_base() * v; }\n") ]
  in
  let b = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree in
  check
    (Alcotest.list
       (Alcotest.triple Alcotest.string Alcotest.string Alcotest.string))
    "inline decisions surfaced"
    [ ("m.c", "calc", "get_base") ]
    (Kbuild.inlined_callees b)

let test_build_error_names_unit () =
  let bad = Tree.of_list [ ("broken.c", "int f( { return; }\n") ] in
  (* errors-as-data: the failure is a typed value naming the unit *)
  (match Kbuild.build_tree ~options:Minic.Driver.run_build bad with
  | Ok _ -> Alcotest.fail "expected a typed build error"
  | Error (Kbuild.Unit_compile_failed { unit_name; reason }) ->
    Alcotest.(check string) "names the unit" "broken.c" unit_name;
    Alcotest.(check bool) "message names the unit" true
      (String.length reason >= 6 && String.sub reason 0 6 = "broken")
  | Error e -> Alcotest.failf "unexpected error: %a" Kbuild.pp_error e);
  (* the legacy exception wrapper carries the same rendering *)
  try
    ignore (Kbuild.build_tree_exn ~options:Minic.Driver.run_build bad);
    Alcotest.fail "expected Build_error"
  with Kbuild.Build_error m ->
    Alcotest.(check bool) "names the unit" true
      (String.length m >= 8 && String.sub m 0 6 = "broken")

let suite =
  [
    ( "kbuild",
      [
        t "builds only sources" test_builds_only_sources;
        t "determinism" test_determinism;
        t "cache reuse" test_cache_physical_reuse;
        t "options invalidate cache" test_options_invalidate_cache;
        t "inline metadata" test_inline_metadata;
        t "build error names unit" test_build_error_names_unit;
      ] );
  ]
