(* The minimal-differencing engine (Diffobj/Prepost/Create): benign
   rebuild noise must produce empty diffs, genuinely changed functions
   ship alone, data referents and closure inclusions are detected, every
   shipped symbol carries a reason, and the unit-diff/2 store codec is
   total. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Update = Ksplice.Update
module Create = Ksplice.Create
module Prepost = Ksplice.Prepost
module Apply = Ksplice.Apply

let t name f = Alcotest.test_case name `Quick f
let slist = Alcotest.(list string)

let compile ?(options = Minic.Driver.pre_build) src =
  (Minic.Driver.compile_exn ~options ~unit_name:"u.c" src).obj

let diff ?options_pre ?options_post a b =
  Prepost.diff_unit
    ~pre:(compile ?options:options_pre a)
    ~post:(compile ?options:options_post b)

(* --- noise filtering: rebuild drift that changes no semantics --- *)

(* reordering the functions renumbers every [.Lstr] temp (interning
   order) — content correlation must cancel it *)
let test_noise_temp_renumbering () =
  let a =
    {|
char *tag_a() { return "alpha"; }
char *tag_b() { return "bravo"; }
int pick(int w) { if (w) return tag_a()[0]; return tag_b()[0]; }
|}
  in
  let b =
    {|
char *tag_b() { return "bravo"; }
char *tag_a() { return "alpha"; }
int pick(int w) { if (w) return tag_a()[0]; return tag_b()[0]; }
|}
  in
  let d = diff a b in
  Alcotest.(check bool) "reorder is noise" true (Prepost.is_empty d)

(* the same source built with and without loop alignment differs only in
   no-op padding, which the comparison skips like run-pre matching does *)
let test_noise_nop_padding () =
  let src =
    {|
int total = 0;
int sum(int n) {
  int i;
  int s;
  s = 0;
  for (i = 0; i < n; i = i + 1)
    s = s + i;
  total = s;
  return s;
}
|}
  in
  let aligned =
    { Minic.Driver.pre_build with
      codegen = { Minic.Codegen.function_sections = true; align_loops = true }
    }
  in
  let d = diff ~options_post:aligned src src in
  Alcotest.(check bool) "alignment padding is noise" true (Prepost.is_empty d)

(* whole-tree check through Create: a patch that perturbs the source
   without changing any object code must yield No_object_changes *)
let test_noise_source_only_patch () =
  let base = Corpus.Base_kernel.tree () in
  let banner = Option.get (Tree.find base "kernel/banner.c") in
  let to_ = Tree.add base "kernel/banner.c" (banner ^ "\n\n") in
  match
    Create.create
      { source = base; patch = Diff.diff_trees base to_;
        update_id = "noise"; description = "" }
  with
  | Error Create.No_object_changes -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Create.pp_error e
  | Ok _ -> Alcotest.fail "whitespace-only patch produced an update"

(* --- data-referent detection and closure --- *)

let test_string_change_is_data_referent () =
  let a = {|
int csum() {
  char *b = "old tag";
  return b[0] + b[1];
}
|} in
  let b = {|
int csum() {
  char *b = "new tag";
  return b[0] + b[1];
}
|} in
  let d = diff a b in
  Alcotest.check slist "reader must be replaced" [ "csum" ]
    d.changed_functions;
  Alcotest.(check bool) "changed rodata recorded" true
    (d.changed_rodata <> []);
  (* the reader ships as a data referent, the slice by closure *)
  let reason_of n = List.assoc_opt n d.inclusion in
  (match reason_of "csum" with
   | Some (Prepost.Data_referent _) -> ()
   | r ->
     Alcotest.failf "csum reason: %s"
       (match r with
        | Some r -> Prepost.reason_to_string r
        | None -> "not shipped"));
  let slice = List.hd d.changed_rodata in
  (match reason_of slice with
   | Some (Prepost.Closure_of "csum") -> ()
   | r ->
     Alcotest.failf "%s reason: %s" slice
       (match r with
        | Some r -> Prepost.reason_to_string r
        | None -> "not shipped"))

let test_unchanged_neighbors_not_shipped () =
  let a = {|
int keep(int x) { return x * 3; }
int bump(int x) { return x + 1; }
|} in
  let b = {|
int keep(int x) { return x * 3; }
int bump(int x) { return x + 2; }
|} in
  let d = diff a b in
  Alcotest.check slist "only bump" [ "bump" ] d.changed_functions;
  Alcotest.(check bool) "keep not shipped" true
    (not (List.mem_assoc "keep" d.inclusion))

(* --- end to end: the banner corpus row --- *)

let int32_c' = Alcotest.int32

let expected_banner_sum s =
  String.fold_left (fun a c -> a + Char.code c) 0 s

let test_banner_refresh_end_to_end () =
  let base = Corpus.Base_kernel.tree () in
  let cve = Corpus.Cve.diff_banner in
  let patch = Corpus.Cve.hot_patch cve base in
  let created =
    match
      Create.create
        { source = base; patch; update_id = cve.id; description = cve.desc }
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "create: %a" Create.pp_error e
  in
  (* the unchanged-code function ships as a data referent *)
  let reasons = Create.shipped_symbols created in
  Alcotest.(check bool) "banner_csum ships as data referent" true
    (List.exists
       (function
         | sym, (_, Prepost.Data_referent _) ->
           String.length sym >= 11 && String.sub sym 0 11 = "banner_csum"
         | _ -> false)
       reasons);
  Alcotest.(check bool) "a rodata slice ships by closure" true
    (List.exists
       (function _, (_, Prepost.Closure_of _) -> true | _ -> false)
       reasons);
  (* apply to a live kernel: the hook refreshes the derived checksum
     through the trampolined banner_csum *)
  let b = Corpus.Boot.boot () in
  Alcotest.(check int32_c') "boot computed the old checksum"
    (Int32.of_int (expected_banner_sum Corpus.Cve.banner_old))
    (Corpus.Boot.read_global b "banner_sum");
  let mgr = Apply.init b.machine in
  (match Apply.apply mgr created.update with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "apply: %a" Apply.pp_error e);
  Alcotest.(check int32_c') "hook recomputed through the new string"
    (Int32.of_int (expected_banner_sum Corpus.Cve.banner_new))
    (Corpus.Boot.read_global b "banner_sum");
  match Apply.undo mgr cve.id with
  | Ok () -> ()
  | Error e -> Alcotest.failf "undo: %a" Apply.pp_error e

(* --- persistent-data gate names the symbol --- *)

let test_persistent_data_change_rejected () =
  let base = Corpus.Base_kernel.tree () in
  (* a Table-1 "changes data init" row whose fix rewrites a global's
     initializer image, taken without its custom code *)
  let cve = Option.get (Corpus.Cve.find "CVE-2006-5753") in
  let patch = Corpus.Cve.mainline_patch cve base in
  match
    Create.create
      { source = base; patch; update_id = cve.id; description = "" }
  with
  | Error (Create.Data_semantics_changed ((u, sym) :: _)) ->
    Alcotest.(check string) "unit named" cve.file u;
    Alcotest.(check bool) "symbol named" true (String.length sym > 0)
  | Error e -> Alcotest.failf "unexpected error: %a" Create.pp_error e
  | Ok _ -> Alcotest.fail "persistent data change was not gated"

(* --- minimal vs whole-unit --- *)

let update_bytes (u : Update.t) = Bytes.length (Update.to_bytes u)

let test_minimal_smaller_than_whole () =
  let base = Corpus.Base_kernel.tree () in
  let cve = Option.get (Corpus.Cve.find "CVE-2006-2451") in
  let patch = Corpus.Cve.hot_patch cve base in
  let req =
    { Create.source = base; patch; update_id = cve.id; description = "" }
  in
  let minimal =
    match Create.create req with
    | Ok c -> c.update
    | Error e -> Alcotest.failf "minimal create: %a" Create.pp_error e
  in
  let whole =
    match Create.create ~minimal:false req with
    | Ok c -> c.update
    | Error e -> Alcotest.failf "whole create: %a" Create.pp_error e
  in
  Alcotest.(check bool) "minimal strictly smaller" true
    (update_bytes minimal < update_bytes whole);
  (* and both land the same machine state *)
  let apply_footprint (u : Update.t) =
    let b = Corpus.Boot.boot () in
    let mgr = Apply.init b.machine in
    (match Apply.apply mgr u with
     | Ok _ -> ()
     | Error e -> Alcotest.failf "apply: %a" Apply.pp_error e);
    Apply.footprint mgr
  in
  Alcotest.(check string) "footprint reproducible"
    (apply_footprint minimal) (apply_footprint minimal)

let test_every_shipped_symbol_has_reason () =
  let base = Corpus.Base_kernel.tree () in
  let cve = Option.get (Corpus.Cve.find "CVE-2008-0600") in
  let patch = Corpus.Cve.hot_patch cve base in
  match
    Create.create
      { source = base; patch; update_id = cve.id; description = "" }
  with
  | Error e -> Alcotest.failf "create: %a" Create.pp_error e
  | Ok c ->
    let reasons = Create.shipped_symbols c in
    List.iter
      (fun (sym : Objfile.Symbol.t) ->
        if Objfile.Symbol.is_defined sym then
          Alcotest.(check bool)
            (Printf.sprintf "%s explained" sym.name)
            true
            (List.mem_assoc sym.name reasons))
      c.update.primary.symbols

(* --- unit-diff/2 codec totality --- *)

let sample_diff () =
  diff
    {|
int cfg = 1;
char *tag() { return "v1"; }
int get() { return cfg + tag()[0]; }
|}
    {|
int cfg = 1;
int extra = 9;
char *tag() { return "v2 longer"; }
int get() { return cfg + tag()[0] + extra; }
|}

let test_codec_roundtrip () =
  let d = sample_diff () in
  match Prepost.decode (Prepost.encode d) with
  | Ok d' ->
    Alcotest.(check bool) "roundtrip" true (d = d')
  | Error e -> Alcotest.failf "decode: %a" Prepost.pp_decode_error e

let test_codec_rejects_v1_blob () =
  (* the retired unit-diff/1 codec led with a decimal length, never the
     UDF2 magic: any such blob must be a typed error (a cache miss at
     the store layer), not an exception *)
  List.iter
    (fun blob ->
      match Prepost.decode blob with
      | Ok _ -> Alcotest.failf "v1-style blob %S parsed" blob
      | Error _ -> ())
    [ ""; "3:u.c"; "1|get|"; "UDF1"; "UDF2"; "UDF2trailing" ]

let decode_total s =
  match Prepost.decode s with
  | Ok _ -> true
  | Error _ -> true
  | exception _ -> false

let test_codec_every_prefix_rejected () =
  let good = Prepost.encode (sample_diff ()) in
  for n = 0 to String.length good - 1 do
    let p = String.sub good 0 n in
    (match Prepost.decode p with
     | Ok _ -> Alcotest.failf "prefix of %d bytes parsed" n
     | Error _ -> ()
     | exception e ->
       Alcotest.failf "prefix of %d bytes raised %s" n (Printexc.to_string e))
  done

let prop_codec_byte_flip_total =
  let open QCheck2.Gen in
  QCheck2.Test.make ~name:"unit-diff/2 decode is total under byte flips"
    ~count:500
    (tup2 (int_range 0 100_000) (int_range 1 255))
    (fun (pos, flip) ->
      let good = Bytes.of_string (Prepost.encode (sample_diff ())) in
      let pos = pos mod Bytes.length good in
      Bytes.set_uint8 good pos (Bytes.get_uint8 good pos lxor flip);
      decode_total (Bytes.to_string good))

let suite =
  [
    ( "create-diff",
      [
        t "temp renumbering is noise" test_noise_temp_renumbering;
        t "nop padding is noise" test_noise_nop_padding;
        t "whitespace-only patch is No_object_changes"
          test_noise_source_only_patch;
        t "string change is a data referent"
          test_string_change_is_data_referent;
        t "unchanged neighbours stay home"
          test_unchanged_neighbors_not_shipped;
        t "banner refresh end to end" test_banner_refresh_end_to_end;
        t "persistent data change names the symbol"
          test_persistent_data_change_rejected;
        t "minimal update smaller than whole-unit"
          test_minimal_smaller_than_whole;
        t "every shipped symbol explained"
          test_every_shipped_symbol_has_reason;
        t "unit-diff/2 roundtrip" test_codec_roundtrip;
        t "unit-diff/1 blobs are misses" test_codec_rejects_v1_blob;
        t "every truncated prefix rejected"
          test_codec_every_prefix_rejected;
        QCheck_alcotest.to_alcotest prop_codec_byte_flip_total;
      ] );
  ]
