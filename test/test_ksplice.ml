(* Integration tests for the Ksplice core: the full paper pipeline on a
   miniature kernel. The running kernel is built distro-style (no function
   sections, aligned loops); updates are created with function sections —
   so every test also exercises run-pre matching across the §4.3
   object-code divergences (relocation holes, alignment no-ops). *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Image = Klink.Image
module Machine = Kernel.Machine
module Update = Ksplice.Update
module Create = Ksplice.Create
module Apply = Ksplice.Apply

let check = Alcotest.check
let int32_c = Alcotest.int32
let t name f = Alcotest.test_case name `Quick f

(* --- the miniature kernel --- *)

let main_c =
  {|
int config = 10;
static int debug = 1;
static int scale_impl(int x) {
  int r = x * 2;
  r = r + x;
  if (r > 1000) { r = 1000; }
  if (r < -1000) { r = -1000; }
  return r;
}
int get_config() { return config; }
int compute(int x) {
  int base = get_config();
  int acc = 0;
  int i;
  for (i = 0; i < x; i = i + 1)
    acc = acc + base;
  return acc + debug;
}
int dispatch(int x) { return compute(x) + scale_impl(0); }
|}

let util_c =
  {|
static int debug = 5;
static int scale_impl(int x) {
  int r = x * 7;
  r = r - x;
  if (r > 500) { r = 500; }
  if (r < -500) { r = -500; }
  return r;
}
int util_scale(int x) { return scale_impl(x) + debug; }
|}

let worker_c =
  {|
int work_done = 0;
void worker_loop() {
  while (1) {
    work_done = work_done + 1;
    __yield();
  }
}
int idle_probe() { return work_done; }
|}

let base_tree =
  Tree.of_list
    [ ("kernel/main.c", main_c); ("kernel/util.c", util_c);
      ("kernel/worker.c", worker_c) ]

let boot ?(tree = base_tree) () =
  let build = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree in
  let img = Image.link_exn ~base:0x100000 (Kbuild.objects build) in
  (img, Machine.create img)

let call m img fn args =
  let sym =
    match Image.lookup_global img fn with
    | Some s -> s
    | None -> Alcotest.failf "symbol %s not found" fn
  in
  match Machine.call_function m ~addr:sym.addr ~args with
  | Ok v -> v
  | Error f -> Alcotest.failf "%s faulted: %a" fn Machine.pp_fault f

let patch_of ~from ~to_ = Diff.diff_trees from to_

let edit tree path f =
  match Tree.find tree path with
  | Some c -> Tree.add tree path (f c)
  | None -> Alcotest.failf "no file %s" path

let replace_once ~old_s ~new_s s =
  let rec find i =
    if i + String.length old_s > String.length s then
      Alcotest.failf "pattern %S not found" old_s
    else if String.sub s i (String.length old_s) = old_s then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ new_s
  ^ String.sub s
      (i + String.length old_s)
      (String.length s - i - String.length old_s)

let mk_update ?(id = "test-update") ~from ~to_ () =
  match
    Create.create
      { source = from; patch = patch_of ~from ~to_; update_id = id;
        description = "test" }
  with
  | Ok c -> c
  | Error e -> Alcotest.failf "create failed: %a" Create.pp_error e

let apply_ok mgr update =
  match Apply.apply mgr update with
  | Ok a -> a
  | Error e -> Alcotest.failf "apply failed: %a" Apply.pp_error e

(* --- create-level tests --- *)

let test_create_simple () =
  let to_ =
    edit base_tree "kernel/main.c"
      (replace_once ~old_s:"return acc + debug;"
         ~new_s:"return acc + debug + 100;")
  in
  let { Create.update; diffs; _ } = mk_update ~from:base_tree ~to_ () in
  let d = List.hd diffs in
  check (Alcotest.list Alcotest.string) "only compute changed" [ "compute" ]
    d.changed_functions;
  check (Alcotest.list Alcotest.string) "replaced list"
    [ "compute" ]
    (List.map snd update.replaced_functions);
  Alcotest.(check int) "one helper" 1 (List.length update.helpers)

let test_create_inline_ripple () =
  (* patching get_config must also replace compute, where it is inlined
     (§4.2) — even though compute's source is untouched *)
  let to_ =
    edit base_tree "kernel/main.c"
      (replace_once ~old_s:"int get_config() { return config; }"
         ~new_s:"int get_config() { return config + 1; }")
  in
  let { Create.diffs; _ } = mk_update ~from:base_tree ~to_ () in
  let d = List.hd diffs in
  Alcotest.(check bool)
    "compute replaced due to inlining" true
    (List.mem "compute" d.changed_functions);
  Alcotest.(check bool)
    "get_config replaced" true
    (List.mem "get_config" d.changed_functions);
  Alcotest.(check bool)
    "dispatch untouched (not inlined there)" false
    (List.mem "dispatch" d.changed_functions)

let test_create_prototype_ripple () =
  (* §3.1: changing a parameter from int to char changes the callers'
     object code through implicit casting *)
  let tree =
    Tree.of_list
      [ ( "kernel/p.c",
          {|
int helper(int v) { int r = v; r = r * 2; r = r + v; r = r - 1; return r; }
int caller_a(int x) { return helper(x); }
int caller_b(int x) { return helper(x) * 2; }
|}
        ) ]
  in
  let to_ =
    edit tree "kernel/p.c"
      (replace_once ~old_s:"int helper(int v)" ~new_s:"int helper(char v)")
  in
  let { Create.diffs; _ } = mk_update ~from:tree ~to_ () in
  let d = List.hd diffs in
  (* helper's own body is unchanged under this ABI (parameters arrive in
     canonical 32-bit slots); the point of §3.1 is that the *callers*
     change even though their source did not *)
  Alcotest.(check bool) "caller_a changed via implicit cast" true
    (List.mem "caller_a" d.changed_functions);
  Alcotest.(check bool) "caller_b changed via implicit cast" true
    (List.mem "caller_b" d.changed_functions)

let test_create_no_changes () =
  (* comment-only patch: no object code difference *)
  let to_ =
    edit base_tree "kernel/main.c" (fun c -> "/* comment */\n" ^ c)
  in
  match
    Create.create
      { source = base_tree; patch = patch_of ~from:base_tree ~to_;
        update_id = "noop"; description = "" }
  with
  | Error Create.No_object_changes -> ()
  | Ok _ -> Alcotest.fail "expected No_object_changes"
  | Error e -> Alcotest.failf "unexpected error: %a" Create.pp_error e

let test_create_data_semantics_gate () =
  (* §2 / Table 1: changing a variable's initial value cannot be applied
     without custom code *)
  let to_ =
    edit base_tree "kernel/main.c"
      (replace_once ~old_s:"int config = 10;" ~new_s:"int config = 20;")
  in
  match
    Create.create
      { source = base_tree; patch = patch_of ~from:base_tree ~to_;
        update_id = "datachange"; description = "" }
  with
  | Error (Create.Data_semantics_changed [ ("kernel/main.c", "config") ]) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Create.pp_error e
  | Ok _ -> Alcotest.fail "expected Data_semantics_changed"

let test_update_serialisation () =
  let to_ =
    edit base_tree "kernel/main.c"
      (replace_once ~old_s:"return acc + debug;"
         ~new_s:"return acc + debug + 100;")
  in
  let { Create.update; _ } = mk_update ~from:base_tree ~to_ () in
  let u' = Update.of_bytes_exn (Update.to_bytes update) in
  check Alcotest.string "id" update.update_id u'.update_id;
  Alcotest.(check int) "helpers" (List.length update.helpers)
    (List.length u'.helpers);
  Alcotest.(check bool) "replaced functions equal" true
    (update.replaced_functions = u'.replaced_functions)

(* --- apply-level tests --- *)

let test_apply_and_undo () =
  let img, m = boot () in
  check int32_c "before" 31l (call m img "compute" [ 3l ]);
  let to_ =
    edit base_tree "kernel/main.c"
      (replace_once ~old_s:"return acc + debug;"
         ~new_s:"return acc + debug + 100;")
  in
  let { Create.update; _ } = mk_update ~from:base_tree ~to_ () in
  let mgr = Apply.init m in
  let a = apply_ok mgr update in
  check int32_c "after apply" 131l (call m img "compute" [ 3l ]);
  Alcotest.(check bool) "pause was simulated" true (a.pause_ns > 0);
  (match Apply.undo mgr "test-update" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "undo failed: %a" Apply.pp_error e);
  check int32_c "after undo" 31l (call m img "compute" [ 3l ])

let test_apply_inline_ripple_behavior () =
  (* after patching get_config, compute (which inlined it) must change
     behaviour too; dispatch still calls the replaced compute through the
     trampoline *)
  let img, m = boot () in
  check int32_c "dispatch before" 31l (call m img "dispatch" [ 3l ]);
  let to_ =
    edit base_tree "kernel/main.c"
      (replace_once ~old_s:"int get_config() { return config; }"
         ~new_s:"int get_config() { return config + 1; }")
  in
  let { Create.update; _ } = mk_update ~from:base_tree ~to_ () in
  let mgr = Apply.init m in
  ignore (apply_ok mgr update : Apply.applied);
  (* base becomes 11: 3*11 + 1 = 34 *)
  check int32_c "dispatch after" 34l (call m img "dispatch" [ 3l ]);
  check int32_c "get_config after" 11l (call m img "get_config" [])

let test_apply_ambiguous_static () =
  (* main.c and util.c both define static scale_impl and static debug;
     run-pre matching must locate util.c's by content and resolve its
     debug by inference (§4.1, CVE-2005-4639 situation) *)
  let img, m = boot () in
  check int32_c "util_scale before" 17l (call m img "util_scale" [ 2l ]);
  let to_ =
    edit base_tree "kernel/util.c"
      (replace_once ~old_s:"return scale_impl(x) + debug;"
         ~new_s:"return scale_impl(x) + debug * 10;")
  in
  let { Create.update; _ } = mk_update ~from:base_tree ~to_ () in
  let mgr = Apply.init m in
  ignore (apply_ok mgr update : Apply.applied);
  (* 12 + 5*10: must use util.c's debug (5), not main.c's (1) *)
  check int32_c "util_scale after" 62l (call m img "util_scale" [ 2l ])

let test_apply_static_function_patch () =
  (* patch a static function that is ambiguous kernel-wide; candidate
     trial must pick the right body *)
  let img, m = boot () in
  let to_ =
    edit base_tree "kernel/util.c"
      (replace_once ~old_s:"int r = x * 7;" ~new_s:"int r = x * 9;")
  in
  let { Create.update; _ } = mk_update ~from:base_tree ~to_ () in
  let mgr = Apply.init m in
  ignore (apply_ok mgr update : Apply.applied);
  (* scale_impl(2) = 2*9-2 = 16, + debug 5 = 21 *)
  check int32_c "patched static" 21l (call m img "util_scale" [ 2l ]);
  (* main.c's scale_impl untouched: dispatch unchanged *)
  check int32_c "other unit unaffected" 31l (call m img "dispatch" [ 3l ])

let test_apply_mismatched_source_aborts () =
  (* §4.2's other danger: "original" source that does not correspond to
     the running kernel — run-pre matching must abort *)
  let img, m = boot () in
  ignore img;
  let wrong_base =
    edit base_tree "kernel/main.c"
      (replace_once ~old_s:"int acc = 0;" ~new_s:"int acc = 1;")
  in
  let to_ =
    edit wrong_base "kernel/main.c"
      (replace_once ~old_s:"return acc + debug;"
         ~new_s:"return acc + debug + 100;")
  in
  let { Create.update; _ } = mk_update ~from:wrong_base ~to_ () in
  let mgr = Apply.init m in
  match Apply.apply mgr update with
  | Error (Apply.Code_mismatch _) -> ()
  | Error (Apply.Ambiguous_symbol (_, _, 0)) -> ()
  | Ok _ -> Alcotest.fail "expected run-pre abort"
  | Error e -> Alcotest.failf "unexpected error: %a" Apply.pp_error e

let test_apply_non_quiescent_aborts () =
  (* §5.2: a function always on some thread's call stack cannot be
     patched; ksplice must retry and then abandon *)
  let img, m = boot () in
  let entry = (Option.get (Image.lookup_global img "worker_loop")).addr in
  ignore (Machine.spawn m ~name:"kworker" ~uid:0 ~entry ~args:[]);
  ignore (Machine.run m ~steps:500 : int);
  let to_ =
    edit base_tree "kernel/worker.c"
      (replace_once ~old_s:"work_done = work_done + 1;"
         ~new_s:"work_done = work_done + 2;")
  in
  let { Create.update; _ } = mk_update ~from:base_tree ~to_ () in
  let mgr = Apply.init m in
  match Apply.apply mgr update with
  | Error (Apply.Not_quiescent nq) ->
    Alcotest.(check bool) "names worker_loop" true
      (List.exists
         (fun f -> fst (Update.split_canonical f) = "worker_loop")
         nq.Apply.nq_functions);
    Alcotest.(check bool) "made several attempts" true (nq.nq_attempts >= 2);
    Alcotest.(check bool) "identifies a blocking thread" true
      (List.exists
         (fun (who, _) ->
           (* the spinning kworker thread *)
           let needle = "kworker" in
           let n = String.length needle in
           let rec has i =
             i + n <= String.length who
             && (String.sub who i n = needle || has (i + 1))
           in
           has 0)
         nq.nq_blockers)
  | Ok _ -> Alcotest.fail "expected Not_quiescent"
  | Error e -> Alcotest.failf "unexpected error: %a" Apply.pp_error e

let test_apply_quiesces_transient_use () =
  (* a thread merely passing through the function quiesces after a retry *)
  let img, m = boot () in
  let entry = (Option.get (Image.lookup_global img "compute")).addr in
  (* park a thread mid-compute by running a few instructions only *)
  ignore (Machine.spawn m ~name:"transient" ~uid:0 ~entry ~args:[ 100l ]);
  ignore (Machine.run m ~steps:10 : int);
  let to_ =
    edit base_tree "kernel/main.c"
      (replace_once ~old_s:"return acc + debug;"
         ~new_s:"return acc + debug + 100;")
  in
  let { Create.update; _ } = mk_update ~from:base_tree ~to_ () in
  let mgr = Apply.init m in
  ignore (apply_ok mgr update : Apply.applied);
  check int32_c "applied after retry" 131l (call m img "compute" [ 3l ])

let test_stacked_updates () =
  (* §5.4: patch a previously-patched kernel; the second update's pre code
     is matched against the first update's replacement code *)
  let img, m = boot () in
  let mgr = Apply.init m in
  let tree1 =
    edit base_tree "kernel/main.c"
      (replace_once ~old_s:"return acc + debug;"
         ~new_s:"return acc + debug + 100;")
  in
  let { Create.update = u1; _ } =
    mk_update ~id:"update-1" ~from:base_tree ~to_:tree1 ()
  in
  ignore (apply_ok mgr u1 : Apply.applied);
  check int32_c "first update" 131l (call m img "compute" [ 3l ]);
  (* the second patch is a diff against the previously-patched source *)
  let tree2 =
    edit tree1 "kernel/main.c"
      (replace_once ~old_s:"return acc + debug + 100;"
         ~new_s:"return acc + debug + 1000;")
  in
  let { Create.update = u2; _ } =
    mk_update ~id:"update-2" ~from:tree1 ~to_:tree2 ()
  in
  ignore (apply_ok mgr u2 : Apply.applied);
  check int32_c "second update" 1031l (call m img "compute" [ 3l ]);
  (* undo restores the first update's behaviour *)
  (match Apply.undo mgr "update-2" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "undo: %a" Apply.pp_error e);
  check int32_c "back to first" 131l (call m img "compute" [ 3l ])

let test_undo_discipline () =
  let img, m = boot () in
  ignore img;
  let mgr = Apply.init m in
  (match Apply.undo mgr "nothing" with
   | Error (Apply.Not_applied _) -> ()
   | _ -> Alcotest.fail "expected Not_applied");
  let tree1 =
    edit base_tree "kernel/main.c"
      (replace_once ~old_s:"return acc + debug;"
         ~new_s:"return acc + debug + 100;")
  in
  let { Create.update = u1; _ } =
    mk_update ~id:"u1" ~from:base_tree ~to_:tree1 ()
  in
  ignore (apply_ok mgr u1 : Apply.applied);
  (match Apply.apply mgr u1 with
   | Error (Apply.Already_applied _) -> ()
   | _ -> Alcotest.fail "expected Already_applied");
  let tree2 =
    edit tree1 "kernel/util.c"
      (replace_once ~old_s:"int r = x * 7;" ~new_s:"int r = x * 8;")
  in
  let { Create.update = u2; _ } = mk_update ~id:"u2" ~from:tree1 ~to_:tree2 () in
  ignore (apply_ok mgr u2 : Apply.applied);
  match Apply.undo mgr "u1" with
  | Error (Apply.Not_topmost _) -> ()
  | _ -> Alcotest.fail "expected Not_topmost"

let test_hooks_and_custom_code () =
  (* §5.3: a patch with custom code run at apply time; the hook fixes up
     existing state (the "changes data init" Table 1 pattern) *)
  let img, m = boot () in
  let mgr = Apply.init m in
  let to_ =
    base_tree
    |> (fun t ->
         edit t "kernel/main.c"
           (replace_once ~old_s:"int config = 10;" ~new_s:"int config = 20;"))
    |> fun t ->
    edit t "kernel/main.c" (fun c ->
        c
        ^ {|
void fix_existing_config() { config = 20; }
ksplice_apply(fix_existing_config);
|})
  in
  let { Create.update; _ } =
    mk_update ~id:"hooked" ~from:base_tree ~to_ ()
  in
  ignore (apply_ok mgr update : Apply.applied);
  (* the hook rewrote the live variable *)
  check int32_c "hook fixed existing data" 20l (call m img "get_config" [])

let test_new_static_data () =
  (* a patch introducing a new static variable: it must live in the
     primary module, not resolve to anything pre-existing *)
  let img, m = boot () in
  let mgr = Apply.init m in
  let to_ =
    edit base_tree "kernel/util.c" (fun c ->
        replace_once
          ~old_s:"int util_scale(int x) { return scale_impl(x) + debug; }"
          ~new_s:
            {|static int call_count = 3;
int util_scale(int x) { call_count = call_count + 1; return scale_impl(x) + debug + call_count; }|}
          c)
  in
  let { Create.update; _ } =
    mk_update ~id:"newdata" ~from:base_tree ~to_ ()
  in
  ignore (apply_ok mgr update : Apply.applied);
  (* first call: count 4 -> 12 + 5 + 4 *)
  check int32_c "new static data first" 21l (call m img "util_scale" [ 2l ]);
  check int32_c "new static data second" 22l (call m img "util_scale" [ 2l ])

let test_trampoline_size_accounting () =
  (* an applied update records saved bytes for each replaced function *)
  let img, m = boot () in
  ignore img;
  let mgr = Apply.init m in
  let to_ =
    edit base_tree "kernel/main.c"
      (replace_once ~old_s:"return acc + debug;"
         ~new_s:"return acc + debug + 100;")
  in
  let { Create.update; _ } = mk_update ~from:base_tree ~to_ () in
  let a = apply_ok mgr update in
  Alcotest.(check int) "one trampoline" 1 (List.length a.saved);
  List.iter
    (fun (_, b) -> Alcotest.(check int) "5 bytes saved" 5 (Bytes.length b))
    a.saved;
  List.iter
    (fun (r : Apply.replacement) ->
      Alcotest.(check bool) "old below module area" true
        (r.r_old_addr < r.r_new_addr))
    a.replacements

let suite =
  [
    ( "ksplice",
      [
        t "create: simple patch" test_create_simple;
        t "create: inline ripple" test_create_inline_ripple;
        t "create: prototype ripple" test_create_prototype_ripple;
        t "create: no object changes" test_create_no_changes;
        t "create: data semantics gate" test_create_data_semantics_gate;
        t "update serialisation" test_update_serialisation;
        t "apply and undo" test_apply_and_undo;
        t "apply: inline ripple behaviour" test_apply_inline_ripple_behavior;
        t "apply: ambiguous static data" test_apply_ambiguous_static;
        t "apply: ambiguous static function" test_apply_static_function_patch;
        t "apply: mismatched source aborts" test_apply_mismatched_source_aborts;
        t "apply: non-quiescent aborts" test_apply_non_quiescent_aborts;
        t "apply: transient use quiesces" test_apply_quiesces_transient_use;
        t "stacked updates" test_stacked_updates;
        t "undo discipline" test_undo_discipline;
        t "custom code hooks" test_hooks_and_custom_code;
        t "new static data" test_new_static_data;
        t "trampoline accounting" test_trampoline_size_accounting;
      ] );
  ]
