(* Kernel VM tests: interpreter semantics, threads and scheduling,
   faults, privilege, shadow data structures, and stop_machine. *)

module Isa = Vmisa.Isa
module Image = Klink.Image
module Machine = Kernel.Machine
module Frag = Asm.Frag
module Section = Objfile.Section
module Symbol = Objfile.Symbol

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

(* build a machine whose kernel is a raw assembly unit *)
let boot_asm src =
  let obj = Asm.Assembler.assemble ~unit_name:"k.s" ~function_sections:false src in
  let img = Image.link_exn ~base:0x100000 [ obj ] in
  (img, Machine.create img)

let addr img name = (Option.get (Image.lookup_global img name)).Image.addr

let call m img name args =
  match Machine.call_function m ~addr:(addr img name) ~args with
  | Ok v -> v
  | Error f -> Alcotest.failf "%s faulted: %a" name Machine.pp_fault f

let test_alu_semantics () =
  let img, m =
    boot_asm
      {|
.text
.global alu
alu:
  loadw r0, [sp+4]
  loadw r1, [sp+8]
  mov r2, r0
  add r2, r1
  mov r3, r0
  sub r3, r1
  mul r3, r2
  mov r0, r3
  ret
|}
  in
  (* (a-b) * (a+b) *)
  check Alcotest.int32 "alu" 91l (call m img "alu" [ 10l; 3l ]);
  check Alcotest.int32 "alu negative" (-91l) (call m img "alu" [ 3l; 10l ])

let test_flags_and_conditions () =
  let img, m =
    boot_asm
      {|
.text
.global cmp3
cmp3:
  loadw r0, [sp+4]
  cmpi r0, 10
  jl .Lless
  jg .Lmore
  mov r0, 0
  ret
.Lless:
  mov r0, -1
  ret
.Lmore:
  mov r0, 1
  ret
|}
  in
  check Alcotest.int32 "less" (-1l) (call m img "cmp3" [ 5l ]);
  check Alcotest.int32 "equal" 0l (call m img "cmp3" [ 10l ]);
  check Alcotest.int32 "more" 1l (call m img "cmp3" [ 99l ]);
  check Alcotest.int32 "signed less" (-1l) (call m img "cmp3" [ -3l ])

let test_memory_widths () =
  let img, m =
    boot_asm
      {|
.text
.global poke
poke:
  mov r1, scratch
  mov r2, 0x11223344
  storew [r1+0], r2
  loadb r0, [r1+1]
  mov r3, 16
  loadh r1, [r1+0]
  shl r0, r3
  or r0, r1
  ret
.bss
.global scratch
scratch:
  .space 8
|}
  in
  (* byte 1 = 0x33, halfword = 0x3344 (little endian) *)
  let v = call m img "poke" [] in
  check Alcotest.int32 "byte and half extraction"
    (Int32.logor (Int32.shift_left 0x33l 16) 0x3344l)
    v

let test_shift_mask_semantics () =
  let img, m =
    boot_asm
      {|
.text
.global sh
sh:
  loadw r0, [sp+4]
  loadw r1, [sp+8]
  shr r0, r1
  ret
.global sar_f
sar_f:
  loadw r0, [sp+4]
  loadw r1, [sp+8]
  sar r0, r1
  ret
|}
  in
  check Alcotest.int32 "logical shift" 0x7fffffffl
    (call m img "sh" [ -2l; 1l ]);
  check Alcotest.int32 "arithmetic shift" (-1l)
    (call m img "sar_f" [ -2l; 1l ]);
  (* shift amounts are masked to 31 *)
  check Alcotest.int32 "shift mask" 1l (call m img "sh" [ 2l; 33l ])

let test_fault_memory_violation () =
  let img, m = boot_asm {|
.text
.global bad
bad:
  mov r1, 16
  loadw r0, [r1+0]
  ret
|} in
  match Machine.call_function m ~addr:(addr img "bad") ~args:[] with
  | Error (Machine.Memory_violation 16) -> ()
  | _ -> Alcotest.fail "expected memory violation at 16"

let test_fault_illegal_instruction () =
  let img, m = boot_asm ".text\n.global f\nf:\n  ret\n" in
  (* write garbage over f *)
  Machine.write_bytes m (addr img "f") (Bytes.make 1 '\xEE');
  match Machine.call_function m ~addr:(addr img "f") ~args:[] with
  | Error (Machine.Illegal_instruction _) -> ()
  | _ -> Alcotest.fail "expected illegal instruction"

let test_privileged_escape () =
  (* INT 5 (setuid) from kernel text is allowed; patching the same code
     into user-reachable memory must fault *)
  let img, m =
    boot_asm {|
.text
.global elevate
elevate:
  mov r1, 0
  int 5
  mov r0, 0
  ret
|}
  in
  let th =
    Machine.spawn m ~name:"u" ~uid:1000 ~entry:(addr img "elevate") ~args:[]
  in
  ignore (Machine.run m ~steps:100 : int);
  check Alcotest.int "kernel text may set uid" 0 th.uid;
  (* copy the same code into unprivileged memory *)
  let code = Machine.read_bytes m (addr img "elevate") 16 in
  let user_at = Machine.alloc_module m ~size:16 ~align:4 in
  Machine.write_bytes m user_at code;
  let th2 = Machine.spawn m ~name:"u2" ~uid:1000 ~entry:user_at ~args:[] in
  ignore (Machine.run m ~steps:100 : int);
  (match th2.state with
   | Machine.Faulted (Machine.Privilege_violation _) -> ()
   | s ->
     Alcotest.failf "expected privilege fault, got %s"
       (match s with
        | Machine.Exited _ -> "exit"
        | Machine.Runnable -> "runnable"
        | _ -> "other"));
  check Alcotest.int "uid unchanged" 1000 th2.uid

let test_round_robin_fairness () =
  (* two spinning threads both make progress *)
  let img, m =
    boot_asm
      {|
.text
.global spin
spin:
  loadw r1, [sp+4]
.Lloop:
  loadw r2, [r1+0]
  addi r2, 1
  storew [r1+0], r2
  jmp .Lloop
.bss
.global cell_a
cell_a:
  .space 4
.global cell_b
cell_b:
  .space 4
|}
  in
  let a = addr img "cell_a" and b = addr img "cell_b" in
  ignore
    (Machine.spawn m ~name:"a" ~uid:0 ~entry:(addr img "spin")
       ~args:[ Int32.of_int a ]);
  ignore
    (Machine.spawn m ~name:"b" ~uid:0 ~entry:(addr img "spin")
       ~args:[ Int32.of_int b ]);
  ignore (Machine.run m ~steps:4000 : int);
  let va = Int32.to_int (Machine.read_i32 m a) in
  let vb = Int32.to_int (Machine.read_i32 m b) in
  Alcotest.(check bool) "both progressed" true (va > 10 && vb > 10);
  Alcotest.(check bool) "roughly fair" true
    (abs (va - vb) < (va + vb) / 2)

let test_sleep_wakes () =
  let img, m =
    boot_asm
      {|
.text
.global sleeper
sleeper:
  mov r1, 500
  int 6
  mov r0, 42
  mov r1, r0
  int 1
.global spin
spin:
  jmp spin
|}
  in
  let th =
    Machine.spawn m ~name:"s" ~uid:0 ~entry:(addr img "sleeper") ~args:[]
  in
  (* a busy thread keeps virtual time ticking one instruction at a time *)
  ignore (Machine.spawn m ~name:"spin" ~uid:0 ~entry:(addr img "spin") ~args:[]);
  ignore (Machine.run m ~steps:100 : int);
  (match th.state with
   | Machine.Sleeping _ -> ()
   | _ -> Alcotest.fail "expected sleeping");
  ignore (Machine.run m ~steps:2000 : int);
  match th.state with
  | Machine.Exited 42l -> ()
  | _ -> Alcotest.fail "expected exit 42 after wake"

let test_exit_gadget () =
  (* a spawned entry can simply return; its r0 becomes the exit status *)
  let img, m = boot_asm ".text\n.global f\nf:\n  mov r0, 7\n  ret\n" in
  let th = Machine.spawn m ~name:"f" ~uid:0 ~entry:(addr img "f") ~args:[] in
  ignore (Machine.run m ~steps:100 : int);
  match th.state with
  | Machine.Exited 7l -> ()
  | _ -> Alcotest.fail "expected exit 7"

let test_shadow_store () =
  let img, m = boot_asm ".text\n.global f\nf:\n  ret\n" in
  ignore img;
  (* exercise the host shadow escapes through a thread *)
  let frag = Frag.create () in
  List.iter (Frag.insn frag)
    [ Isa.Mov_ri (Isa.R1, 0x1234l) (* object *);
      Isa.Mov_ri (Isa.R2, 7l) (* key *);
      Isa.Mov_ri (Isa.R3, 8l) (* size *);
      Isa.Int 8 (* attach -> r0 *);
      Isa.Mov_rr (Isa.R4, Isa.R0);
      Isa.Mov_ri (Isa.R5, 99l);
      Isa.Store (Isa.W32, Isa.R4, 0, Isa.R5);
      Isa.Mov_ri (Isa.R1, 0x1234l);
      Isa.Mov_ri (Isa.R2, 7l);
      Isa.Int 9 (* get -> r0 *);
      Isa.Load (Isa.W32, Isa.R0, Isa.R0, 0);
      Isa.Ret ];
  let img2 = Frag.assemble frag ~text:true in
  let at = Machine.alloc_module m ~size:(Bytes.length img2.data) ~align:4 in
  Machine.write_bytes m at img2.data;
  Machine.add_privileged_range m (at, at + Bytes.length img2.data);
  (match Machine.call_function m ~addr:at ~args:[] with
   | Ok 99l -> ()
   | Ok v -> Alcotest.failf "shadow readback %ld" v
   | Error f -> Alcotest.failf "fault: %a" Machine.pp_fault f);
  (* idempotent attach, detach removes *)
  (match Machine.call_function m ~addr:at ~args:[] with
   | Ok 99l -> () (* same shadow, value persists *)
   | _ -> Alcotest.fail "shadow not persistent")

let test_stop_machine_pause_model () =
  let img, m = boot_asm ".text\n.global f\nf:\n  ret\n" in
  let r, pause0 = Machine.stop_machine m (fun () -> 42) in
  check Alcotest.int "result passes through" 42 r;
  (* more live threads -> longer simulated pause *)
  for i = 1 to 4 do
    ignore
      (Machine.spawn m
         ~name:(Printf.sprintf "t%d" i)
         ~uid:0 ~entry:(addr img "f") ~args:[])
  done;
  let _, pause4 = Machine.stop_machine m (fun () -> ()) in
  Alcotest.(check bool) "pause grows with CPUs" true (pause4 > pause0)

let test_console_output () =
  let img, m =
    boot_asm
      {|
.text
.global hello
hello:
  mov r1, 72
  int 0
  mov r1, 105
  int 0
  ret
|}
  in
  ignore (call m img "hello" []);
  check Alcotest.string "console" "Hi" (Machine.console m)

let test_module_alloc_distinct () =
  let _, m = boot_asm ".text\n.global f\nf:\n  ret\n" in
  let a = Machine.alloc_module m ~size:100 ~align:16 in
  let b = Machine.alloc_module m ~size:100 ~align:16 in
  Alcotest.(check bool) "aligned" true (a mod 16 = 0 && b mod 16 = 0);
  Alcotest.(check bool) "disjoint" true (b >= a + 100)

let test_reentrant_call_function_rejected () =
  let img, m = boot_asm ".text\n.global f\nf:\n  ret\n" in
  ignore img;
  ignore m;
  (* covered implicitly: call_function guards reentrancy with
     Invalid_argument; exercise via stop_machine nesting *)
  let _, _ =
    Machine.stop_machine m (fun () ->
        match Machine.call_function m ~addr:(addr img "f") ~args:[] with
        | Ok _ -> ()
        | Error f -> Alcotest.failf "inner call failed: %a" Machine.pp_fault f)
  in
  ()

let test_backtrace () =
  let img, m =
    boot_asm
      {|
.text
.global leaf
leaf:
  int 2
  jmp leaf
.global middle
middle:
  call leaf
  ret
.global outer
outer:
  call middle
  ret
|}
  in
  let th =
    Machine.spawn m ~name:"bt" ~uid:0 ~entry:(addr img "outer") ~args:[]
  in
  ignore (Machine.run m ~steps:64 : int);
  let frames = Machine.backtrace m th in
  let mentions name =
    List.exists
      (fun f ->
        String.length f >= String.length name
        && String.sub f 0 (String.length name) = name)
      frames
  in
  Alcotest.(check bool) "leaf on stack" true (mentions "leaf");
  Alcotest.(check bool) "middle on stack" true (mentions "middle");
  Alcotest.(check bool) "outer on stack" true (mentions "outer")

let test_backtrace_sleeping () =
  (* §5.2 diagnostics and the transition manager both walk stacks of
     threads that are NOT running: a sleeper's chain must still resolve *)
  let img, m =
    boot_asm
      {|
.text
.global naplet
naplet:
  mov r1, 1000
  int 6
  ret
.global middle
middle:
  call naplet
  ret
.global outer
outer:
  call middle
  ret
.global spinner
spinner:
  jmp spinner
|}
  in
  let th =
    Machine.spawn m ~name:"sleeper" ~uid:0 ~entry:(addr img "outer") ~args:[]
  in
  (* a busy thread keeps the clock honest: with only a sleeper the
     scheduler would time-teleport straight past the nap *)
  ignore
    (Machine.spawn m ~name:"spinner" ~uid:0 ~entry:(addr img "spinner")
       ~args:[]
      : Machine.thread);
  ignore (Machine.run m ~steps:64 : int);
  (match th.Machine.state with
   | Machine.Sleeping wake ->
     Alcotest.(check bool) "wake in the future" true (wake > Machine.tick m)
   | _ -> Alcotest.fail "thread should be sleeping");
  let frames = Machine.backtrace m th in
  let mentions name =
    List.exists
      (fun f ->
        String.length f >= String.length name
        && String.sub f 0 (String.length name) = name)
      frames
  in
  Alcotest.(check bool) "pc frame resolves into naplet" true
    (mentions "naplet");
  Alcotest.(check bool) "middle on sleeping stack" true (mentions "middle");
  Alcotest.(check bool) "outer on sleeping stack" true (mentions "outer")

let test_backtrace_not_started_and_exited () =
  let img, m =
    boot_asm
      {|
.text
.global solo
solo:
  ret
|}
  in
  (* never stepped: the only honest frame is the entry pc itself *)
  let fresh =
    Machine.spawn m ~name:"fresh" ~uid:0 ~entry:(addr img "solo") ~args:[]
  in
  let frames = Machine.backtrace m fresh in
  Alcotest.(check bool) "at least the pc frame" true (frames <> []);
  Alcotest.(check bool) "pc frame is solo" true
    (match frames with
     | f :: _ ->
       String.length f >= 4 && String.sub f 0 4 = "solo"
     | [] -> false);
  (* exited: backtrace must not raise, whatever it reports *)
  ignore (Machine.run m ~steps:64 : int);
  (match fresh.Machine.state with
   | Machine.Exited _ -> ()
   | _ -> Alcotest.fail "thread should have exited");
  ignore (Machine.backtrace m fresh : string list)

let suite =
  [
    ( "machine",
      [
        t "alu semantics" test_alu_semantics;
        t "flags and conditions" test_flags_and_conditions;
        t "memory widths" test_memory_widths;
        t "shift semantics" test_shift_mask_semantics;
        t "memory violation fault" test_fault_memory_violation;
        t "illegal instruction fault" test_fault_illegal_instruction;
        t "privileged escape" test_privileged_escape;
        t "round robin fairness" test_round_robin_fairness;
        t "sleep and wake" test_sleep_wakes;
        t "exit gadget" test_exit_gadget;
        t "shadow store" test_shadow_store;
        t "stop_machine pause model" test_stop_machine_pause_model;
        t "console output" test_console_output;
        t "module alloc" test_module_alloc_distinct;
        t "call_function inside stop_machine"
          test_reentrant_call_function_rejected;
        t "backtrace" test_backtrace;
        t "backtrace of a sleeping thread" test_backtrace_sleeping;
        t "backtrace of not-started and exited threads"
          test_backtrace_not_started_and_exited;
      ] );
  ]
