(* Linker and module-loader tests: layout, relocation application,
   kallsyms, duplicate detection, local-symbol scoping, and the symbol
   census used by the §6.3 statistics. *)

module Image = Klink.Image
module Modlink = Klink.Modlink
module Section = Objfile.Section
module Symbol = Objfile.Symbol
module Reloc = Objfile.Reloc
module Isa = Vmisa.Isa
module Frag = Asm.Frag

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let compile ~unit_name src =
  (Minic.Driver.compile_exn ~options:Minic.Driver.run_build ~unit_name src).obj

let asm ~unit_name src =
  Asm.Assembler.assemble ~unit_name ~function_sections:false src

let test_layout_order () =
  (* text < rodata < data < bss, and sections respect alignment *)
  let o =
    compile ~unit_name:"a.c"
      {|
int counter = 5;
int blank[4];
int get() { char *s = "str"; return counter + s[0]; }
|}
  in
  let img = Image.link_exn ~base:0x1000 [ o ] in
  let find name =
    List.find (fun (_, s, _, _) -> String.equal s name) img.placements
  in
  let _, _, text_a, _ = find ".text" in
  let _, _, ro_a, _ = find ".rodata.str" in
  let _, _, data_a, _ = find ".data" in
  let _, _, bss_a, _ = find ".bss" in
  Alcotest.(check bool) "ordering" true
    (text_a < ro_a && ro_a < data_a && data_a < bss_a);
  Alcotest.(check bool) "text range covers text" true
    (fst img.text_range <= text_a && text_a < snd img.text_range);
  Alcotest.(check bool) "bss beyond data image" true
    (bss_a >= Bytes.length img.data + img.base)

let test_cross_unit_relocation () =
  let a = compile ~unit_name:"a.c" "extern int shared; int get() { return shared; }" in
  let b = compile ~unit_name:"b.c" "int shared = 77;" in
  let img = Image.link_exn ~base:0x1000 [ a; b ] in
  let m = Kernel.Machine.create ~mem_size:0x100000 img in
  let sym = Option.get (Image.lookup_global img "get") in
  match Kernel.Machine.call_function m ~addr:sym.addr ~args:[] with
  | Ok 77l -> ()
  | Ok v -> Alcotest.failf "got %ld" v
  | Error f -> Alcotest.failf "fault: %a" Kernel.Machine.pp_fault f

let test_duplicate_global_rejected () =
  let a = compile ~unit_name:"a.c" "int v = 1;" in
  let b = compile ~unit_name:"b.c" "int v = 2;" in
  (* errors are data: the variant carries symbol and both units *)
  (match Image.link ~base:0x1000 [ a; b ] with
   | Ok _ -> Alcotest.fail "expected Duplicate_global"
   | Error
       (Image.Duplicate_global { dg_symbol; dg_first_unit; dg_second_unit })
     ->
     check Alcotest.string "symbol" "v" dg_symbol;
     check Alcotest.string "first unit" "a.c" dg_first_unit;
     check Alcotest.string "second unit" "b.c" dg_second_unit
   | Error e -> Alcotest.failf "unexpected error: %a" Image.pp_error e);
  (* the legacy interface still raises, with the rendered message *)
  try
    ignore (Image.link_exn ~base:0x1000 [ a; b ]);
    Alcotest.fail "expected Link_error"
  with Image.Link_error m ->
    Alcotest.(check bool) "names symbol" true
      (String.length m > 0)

let test_local_scoping () =
  (* identically named statics resolve to their own unit's definition *)
  let a =
    compile ~unit_name:"a.c" "static int v = 10; int geta() { return v; }"
  in
  let b =
    compile ~unit_name:"b.c" "static int v = 20; int getb() { return v; }"
  in
  let img = Image.link_exn ~base:0x1000 [ a; b ] in
  let m = Kernel.Machine.create ~mem_size:0x100000 img in
  let call name =
    let sym = Option.get (Image.lookup_global img name) in
    match Kernel.Machine.call_function m ~addr:sym.addr ~args:[] with
    | Ok v -> v
    | Error f -> Alcotest.failf "fault: %a" Kernel.Machine.pp_fault f
  in
  check Alcotest.int32 "a's v" 10l (call "geta");
  check Alcotest.int32 "b's v" 20l (call "getb")

let test_undefined_symbol_rejected () =
  let a = compile ~unit_name:"a.c" "extern int nowhere; int f() { return nowhere; }" in
  match Image.link ~base:0x1000 [ a ] with
  | Ok _ -> Alcotest.fail "expected Undefined_symbol"
  | Error (Image.Undefined_symbol { us_unit; us_symbol; _ }) ->
    check Alcotest.string "unit" "a.c" us_unit;
    check Alcotest.string "symbol" "nowhere" us_symbol
  | Error e -> Alcotest.failf "unexpected error: %a" Image.pp_error e

let test_kallsyms_includes_locals () =
  let a =
    compile ~unit_name:"a.c"
      "static int hidden = 1; int visible() { return hidden; }"
  in
  let img = Image.link_exn ~base:0x1000 [ a ] in
  Alcotest.(check int) "hidden in kallsyms" 1
    (List.length (Image.lookup img "hidden"));
  let h = List.hd (Image.lookup img "hidden") in
  Alcotest.(check bool) "binding local" true (h.binding = Symbol.Local);
  check Alcotest.string "unit recorded" "a.c" h.unit_name

let test_symbol_census () =
  let a = compile ~unit_name:"a.c" "static int dup = 1; int ua() { return dup; }" in
  let b = compile ~unit_name:"b.c" "static int dup = 2; int ub() { return dup; }" in
  let c = compile ~unit_name:"c.c" "int solo() { return 0; }" in
  let img = Image.link_exn ~base:0x1000 [ a; b; c ] in
  let total, ambiguous = Image.symbol_census img in
  Alcotest.(check int) "total" 5 total;
  Alcotest.(check int) "ambiguous (two dup)" 2 ambiguous;
  check
    (Alcotest.list Alcotest.string)
    "units with ambiguity" [ "a.c"; "b.c" ]
    (Image.units_with_ambiguous_symbol img)

let test_data_relocs_in_image () =
  (* .word sym in data must be relocated to the final address *)
  let o =
    asm ~unit_name:"t.s"
      {|
.text
.global f
f:
  ret
.data
.global table
table:
  .word f
  .word f+4
|}
  in
  let img = Image.link_exn ~base:0x1000 [ o ] in
  let f_addr = (Option.get (Image.lookup_global img "f")).addr in
  let table = (Option.get (Image.lookup_global img "table")).addr in
  let w0 = Bytes.get_int32_le img.data (table - img.base) in
  let w1 = Bytes.get_int32_le img.data (table + 4 - img.base) in
  check Alcotest.int32 "table[0] = f" (Int32.of_int f_addr) w0;
  check Alcotest.int32 "table[1] = f+4" (Int32.of_int (f_addr + 4)) w1

(* --- module loader --- *)

let test_modlink_roundtrip () =
  (* place and relocate a module that calls back into "kernel" code *)
  let frag = Frag.create () in
  Frag.jump_reloc frag Isa.Ccall "kernel_fn";
  Frag.insn frag Isa.Ret;
  let img = Frag.assemble frag ~text:true in
  let section =
    Section.make ~name:".text.mod" ~kind:Section.Text ~align:4 img.data
      img.relocs
  in
  let obj =
    Objfile.make ~unit_name:"mod"
      ~sections:
        [ section; Section.make_bss ~name:".bss.state" ~align:4 16 ]
      ~symbols:
        [ Symbol.make ~kind:`Func ~size:(Bytes.length img.data) ~name:"mod_fn"
            (Some { Symbol.section = ".text.mod"; value = 0 });
          Symbol.make ~kind:`Object ~size:16 ~name:"mod_state"
            (Some { Symbol.section = ".bss.state"; value = 0 });
          Symbol.make ~name:"kernel_fn" None ]
  in
  let next = ref 0x8000 in
  let alloc ~size ~align =
    let a = (!next + align - 1) / align * align in
    next := a + size;
    a
  in
  let placed = Modlink.layout ~alloc obj in
  Alcotest.(check bool) "mod_fn placed" true
    (Option.is_some (Modlink.symbol_addr placed "mod_fn"));
  Alcotest.(check bool) "bss placed" true
    (Option.is_some (Modlink.symbol_addr placed "mod_state"));
  let writes =
    Modlink.relocate_exn placed ~resolve:(fun n ->
        if n = "kernel_fn" then Some 0x1234 else None)
  in
  Alcotest.(check int) "two writes" 2 (List.length writes);
  (* decode the relocated call and verify its target *)
  let text_addr = Option.get (Modlink.section_addr placed ".text.mod") in
  let _, bytes = List.find (fun (a, _) -> a = text_addr) writes in
  let insn, len = Isa.decode_bytes bytes 0 in
  (match insn with
   | Isa.Call disp ->
     Alcotest.(check int) "call target" 0x1234
       (text_addr + len + Int32.to_int disp)
   | i -> Alcotest.failf "expected call, got %s" (Isa.insn_to_string i))

let test_modlink_unresolved () =
  let frag = Frag.create () in
  Frag.jump_reloc frag Isa.Ccall "missing";
  let img = Frag.assemble frag ~text:true in
  let obj =
    Objfile.make ~unit_name:"mod"
      ~sections:
        [ Section.make ~name:".text.m" ~kind:Section.Text ~align:4 img.data
            img.relocs ]
      ~symbols:[ Symbol.make ~name:"missing" None ]
  in
  let next = ref 0x8000 in
  let alloc ~size ~align =
    ignore align;
    let a = !next in
    next := a + size;
    a
  in
  let placed = Modlink.layout ~alloc obj in
  (match Modlink.relocate placed ~resolve:(fun _ -> None) with
   | Ok _ -> Alcotest.fail "expected Unresolved_symbol"
   | Error (Modlink.Unresolved_symbol { un_module; un_symbol; _ }) ->
     check Alcotest.string "module" "mod" un_module;
     check Alcotest.string "symbol" "missing" un_symbol);
  (* the legacy interface still raises, with the rendered message *)
  try
    ignore (Modlink.relocate_exn placed ~resolve:(fun _ -> None));
    Alcotest.fail "expected Load_error"
  with Modlink.Load_error m ->
    Alcotest.(check bool) "names the symbol" true
      (String.length m > 0)

let test_note_sections_not_placed () =
  let obj =
    Objfile.make ~unit_name:"mod"
      ~sections:
        [ Section.make ~name:".ksplice.apply" ~kind:Section.Note ~align:4
            (Bytes.make 4 '\000')
            [ { Reloc.offset = 0; kind = Reloc.Abs32; sym = "h"; addend = 0l } ] ]
      ~symbols:[]
  in
  let placed = Modlink.layout ~alloc:(fun ~size ~align -> ignore size; ignore align; 0x8000) obj in
  Alcotest.(check int) "note skipped" 0 (List.length placed.placed)

let suite =
  [
    ( "klink",
      [
        t "layout order" test_layout_order;
        t "cross-unit relocation" test_cross_unit_relocation;
        t "duplicate global rejected" test_duplicate_global_rejected;
        t "local scoping" test_local_scoping;
        t "undefined symbol rejected" test_undefined_symbol_rejected;
        t "kallsyms includes locals" test_kallsyms_includes_locals;
        t "symbol census" test_symbol_census;
        t "data relocs in image" test_data_relocs_in_image;
        t "modlink roundtrip" test_modlink_roundtrip;
        t "modlink unresolved" test_modlink_unresolved;
        t "note sections not placed" test_note_sections_not_placed;
      ] );
  ]
