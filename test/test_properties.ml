(* System-level property tests over randomly generated MiniC kernels:

   1. self-consistency (§4.3): for any program, the pre build (function
      sections, unaligned loops) run-pre matches the distro-style run
      build of the same source;
   2. hot-update equivalence: patching a running kernel gives the same
      observable behaviour as booting the patched source from scratch;
   3. objdump totality: every generated text section disassembles without
      resynchronisation. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Image = Klink.Image
module Machine = Kernel.Machine
module Create = Ksplice.Create
module Apply = Ksplice.Apply

(* --- a small random-program generator --- *)

type rexpr =
  | Cst of int
  | Param
  | Glob of int  (* index into the globals *)
  | Bin of string * rexpr * rexpr

type rstmt =
  | Assign of int * rexpr  (* global <- expr *)
  | If of rexpr * rstmt list
  | Loop of int * rstmt list  (* bounded for loop *)

type rfunc = {
  name : string;
  body : rstmt list;
  ret : rexpr;
}

type rprog = {
  globals : int list;  (* initial values *)
  funcs : rfunc list;
}

let gen_prog =
  let open QCheck2.Gen in
  let gexpr depth =
    fix
      (fun self depth ->
        if depth = 0 then
          oneof
            [ map (fun v -> Cst v) (int_range (-20) 20); return Param;
              map (fun i -> Glob i) (int_range 0 2) ]
        else
          oneof
            [ map (fun v -> Cst v) (int_range (-20) 20); return Param;
              map (fun i -> Glob i) (int_range 0 2);
              map3
                (fun op a b -> Bin (op, a, b))
                (oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ])
                (self (depth - 1))
                (self (depth - 1)) ])
      depth
  in
  let gstmt depth =
    fix
      (fun self depth ->
        if depth = 0 then
          map2 (fun g e -> Assign (g, e)) (int_range 0 2) (gexpr 2)
        else
          oneof
            [ map2 (fun g e -> Assign (g, e)) (int_range 0 2) (gexpr 2);
              map2 (fun c body -> If (c, body)) (gexpr 1)
                (list_size (int_range 1 3) (self (depth - 1)));
              map2
                (fun n body -> Loop (n, body))
                (int_range 1 6)
                (list_size (int_range 1 3) (self (depth - 1))) ])
      depth
  in
  let gfunc i =
    map2
      (fun body ret ->
        { name = Printf.sprintf "fn%d" i; body; ret })
      (list_size (int_range 1 4) (gstmt 2))
      (gexpr 2)
  in
  let open QCheck2.Gen in
  map2
    (fun globals funcs -> { globals; funcs })
    (list_repeat 3 (int_range (-50) 50))
    (flatten_l (List.init 3 gfunc))

let rec expr_to_c = function
  | Cst v -> string_of_int v
  | Param -> "p"
  | Glob i -> Printf.sprintf "g%d" i
  | Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_c a) op (expr_to_c b)

let rec stmt_to_c indent s =
  let pad = String.make indent ' ' in
  match s with
  | Assign (g, e) -> Printf.sprintf "%sg%d = %s;\n" pad g (expr_to_c e)
  | If (c, body) ->
    Printf.sprintf "%sif (%s) {\n%s%s}\n" pad (expr_to_c c)
      (String.concat "" (List.map (stmt_to_c (indent + 2)) body))
      pad
  | Loop (n, body) ->
    (* the induction variable is tied to the nesting depth: nested loops
       must never share one (that is an infinite loop) *)
    let var = Printf.sprintf "it%d" (indent / 2) in
    Printf.sprintf "%sfor (%s = 0; %s < %d; %s = %s + 1) {\n%s%s}\n" pad var
      var n var var
      (String.concat "" (List.map (stmt_to_c (indent + 2)) body))
      pad

let prog_to_c (p : rprog) =
  let b = Buffer.create 512 in
  List.iteri
    (fun i v -> Buffer.add_string b (Printf.sprintf "int g%d = %d;\n" i v))
    p.globals;
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf
           "int %s(int p) {\n  int it1;\n  int it2;\n  int it3;\n  int it4;\n%s  return %s;\n}\n"
           f.name
           (String.concat "" (List.map (stmt_to_c 2) f.body))
           (expr_to_c f.ret)))
    p.funcs;
  Buffer.contents b

let boot_tree tree =
  let build = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree in
  let img = Image.link_exn ~base:0x100000 (Kbuild.objects build) in
  (img, Machine.create img)

let observe (img, m) fname arg =
  match Image.lookup_global img fname with
  | None -> None
  | Some s -> (
    match Machine.call_function m ~addr:s.addr ~args:[ arg ] with
    | Ok v ->
      (* observable state: return value plus every global *)
      let globals =
        List.filter_map
          (fun i ->
            Option.map
              (fun (g : Image.syminfo) -> Machine.read_i32 m g.addr)
              (Image.lookup_global img (Printf.sprintf "g%d" i)))
          [ 0; 1; 2 ]
      in
      Some (v :: globals)
    | Error _ -> None)

(* property 1: pre always matches run *)
let prop_runpre_self_match =
  QCheck2.Test.make ~name:"pre build run-pre matches run build" ~count:30
    gen_prog (fun p ->
      let tree = Tree.of_list [ ("kernel/r.c", prog_to_c p) ] in
      let _, m = boot_tree tree in
      let pre = Kbuild.build_tree_exn ~options:Minic.Driver.pre_build tree in
      let helper = List.hd (Kbuild.objects pre) in
      let inference = Ksplice.Runpre.create_inference () in
      match
        Ksplice.Runpre.match_helper
          ~read_run:(fun a -> Machine.read_u8 m a)
          ~candidates:(fun name ->
            Machine.kallsyms m
            |> List.filter_map (fun (s : Image.syminfo) ->
                 if String.equal s.name name && s.kind = `Func then
                   Some s.addr
                 else None))
          ~already:(fun _ -> None)
          ~inference helper
      with
      | anchors -> List.length anchors = List.length p.funcs
      | exception Ksplice.Runpre.Mismatch _ -> false
      | exception Ksplice.Runpre.Ambiguous _ -> false)

(* property 2: hot apply == fresh boot of patched source *)
let prop_hot_update_equivalence =
  let open QCheck2.Gen in
  QCheck2.Test.make ~name:"hot update behaves like the patched build"
    ~count:20
    (tup3 gen_prog (int_range 0 2) (int_range (-10) 10))
    (fun (p, victim, arg) ->
      let tree = Tree.of_list [ ("kernel/r.c", prog_to_c p) ] in
      (* patch: change the victim function's return expression *)
      let p' =
        { p with
          funcs =
            List.mapi
              (fun i f ->
                if i = victim then
                  { f with ret = Bin ("+", f.ret, Cst 1000) }
                else f)
              p.funcs }
      in
      let tree' = Tree.of_list [ ("kernel/r.c", prog_to_c p') ] in
      match
        Create.create
          { source = tree; patch = Diff.diff_trees tree tree';
            update_id = "prop"; description = "" }
      with
      | Error Create.No_object_changes -> true (* degenerate generator case *)
      | Error _ -> false
      | Ok { update; _ } -> (
        let live = boot_tree tree in
        let mgr = Apply.init (snd live) in
        match Apply.apply mgr update with
        | Error _ -> false
        | Ok _ ->
          let fresh = boot_tree tree' in
          List.for_all
            (fun f ->
              match
                ( observe live f.name (Int32.of_int arg),
                  observe fresh f.name (Int32.of_int arg) )
              with
              | Some a, Some b -> a = b
              | _ -> true (* non-terminating/faulted: not comparable *))
            p.funcs))

(* property 3: generated text disassembles cleanly *)
let prop_objdump_total =
  QCheck2.Test.make ~name:"objdump decodes all generated text" ~count:30
    gen_prog (fun p ->
      let tree = Tree.of_list [ ("kernel/r.c", prog_to_c p) ] in
      let b = Kbuild.build_tree_exn ~options:Minic.Driver.pre_build tree in
      List.for_all
        (fun (o : Objfile.t) ->
          List.for_all
            (fun (s : Objfile.Section.t) ->
              s.kind <> Objfile.Section.Text
              || List.for_all
                   (fun (l : Objfile.Objdump.line) ->
                     not
                       (String.length l.text >= 5
                        && String.sub l.text 0 5 = ".byte"))
                   (Objfile.Objdump.disassemble s))
            o.sections)
        (Kbuild.objects b))

(* property 4: corrupting one byte of the run code is always detected —
   the matcher never silently accepts divergent code (§4.2 safety) *)
let prop_mutation_detected =
  let open QCheck2.Gen in
  QCheck2.Test.make ~name:"mutated run code is never silently accepted"
    ~count:30
    (tup3 gen_prog (int_range 0 10_000) (int_range 1 255))
    (fun (p, seed, delta) ->
      let tree = Tree.of_list [ ("kernel/r.c", prog_to_c p) ] in
      let img, m = boot_tree tree in
      (* pick a text byte deterministically from the seed and corrupt it *)
      let lo, hi = img.text_range in
      let at = lo + (seed mod (hi - lo)) in
      let orig = Machine.read_u8 m at in
      Machine.write_u8 m at ((orig + delta) land 0xff);
      let mutated = Machine.read_u8 m at <> orig in
      let pre = Kbuild.build_tree_exn ~options:Minic.Driver.pre_build tree in
      let helper = List.hd (Kbuild.objects pre) in
      let inference = Ksplice.Runpre.create_inference () in
      let outcome =
        match
          Ksplice.Runpre.match_helper
            ~read_run:(fun a -> Machine.read_u8 m a)
            ~candidates:(fun name ->
              Machine.kallsyms m
              |> List.filter_map (fun (s : Image.syminfo) ->
                   if String.equal s.name name && s.kind = `Func then
                     Some s.addr
                   else None))
            ~already:(fun _ -> None)
            ~inference helper
        with
        | anchors -> `Matched anchors
        | exception Ksplice.Runpre.Mismatch _ -> `Rejected
        | exception Ksplice.Runpre.Ambiguous _ -> `Rejected
      in
      match outcome with
      | `Rejected -> true
      | `Matched _ when not mutated -> true
      | `Matched anchors ->
        (* acceptance is sound only if the corrupt byte lies outside every
           matched function (inter-function padding), or inside a
           relocation hole — in which case the inferred value for some
           symbol differs from a clean match of the uncorrupted image *)
        let inside_matched =
          List.exists
            (fun (cname, addr) ->
              let raw, _ = Ksplice.Update.split_canonical cname in
              match
                List.find_opt
                  (fun (s : Image.syminfo) ->
                    String.equal s.name raw && s.addr = addr)
                  img.kallsyms
              with
              | Some s -> at >= s.addr && at < s.addr + s.size
              | None -> false)
            anchors
        in
        (* bytes inside a no-op sequence are don't-cares: the matcher
           skips nops, and only the opcode byte identifies one *)
        let in_nop_dont_care =
          List.exists
            (fun (cname, addr) ->
              let raw, _ = Ksplice.Update.split_canonical cname in
              match
                List.find_opt
                  (fun (s : Image.syminfo) ->
                    String.equal s.name raw && s.addr = addr)
                  img.kallsyms
              with
              | None -> false
              | Some sym ->
                let pos = ref sym.addr in
                let hit = ref false in
                (try
                   while !pos < sym.addr + sym.size do
                     let insn, len =
                       Vmisa.Isa.decode
                         (fun a -> Machine.read_u8 m a)
                         !pos
                     in
                     if Vmisa.Isa.is_nop insn && at > !pos
                        && at < !pos + len
                     then hit := true;
                     pos := !pos + len
                   done
                 with _ -> ());
                !hit)
            anchors
        in
        (* bytes after the function's last non-nop instruction are
           trailing alignment padding the matcher never needs to examine
           (the pre section is exhausted before reaching them) *)
        let in_trailing_padding =
          List.exists
            (fun (cname, addr) ->
              let raw, _ = Ksplice.Update.split_canonical cname in
              match
                List.find_opt
                  (fun (s : Image.syminfo) ->
                    String.equal s.name raw && s.addr = addr)
                  img.kallsyms
              with
              | None -> false
              | Some sym ->
                if at < sym.addr || at >= sym.addr + sym.size then false
                else begin
                  (* decode the clean stream to find the trailing edge *)
                  Machine.write_u8 m at orig;
                  let trailing = ref sym.addr in
                  let pos = ref sym.addr in
                  (try
                     while !pos < sym.addr + sym.size do
                       let insn, len =
                         Vmisa.Isa.decode
                           (fun a -> Machine.read_u8 m a)
                           !pos
                       in
                       if not (Vmisa.Isa.is_nop insn) then
                         trailing := !pos + len;
                       pos := !pos + len
                     done
                   with _ -> ());
                  (* restore the mutation for the remaining checks *)
                  Machine.write_u8 m at ((orig + delta) land 0xff);
                  at >= !trailing
                end)
            anchors
        in
        if (not inside_matched) || in_nop_dont_care || in_trailing_padding
        then true
        else begin
          (* clean match for reference inferences *)
          Machine.write_u8 m at orig;
          let clean = Ksplice.Runpre.create_inference () in
          (match
             Ksplice.Runpre.match_helper
               ~read_run:(fun a -> Machine.read_u8 m a)
               ~candidates:(fun name ->
                 Machine.kallsyms m
                 |> List.filter_map (fun (s : Image.syminfo) ->
                      if String.equal s.name name && s.kind = `Func then
                        Some s.addr
                      else None))
               ~already:(fun _ -> None)
               ~inference:clean helper
           with
           | _ -> ()
           | exception _ -> ());
          (* the mutated acceptance must be explained by a hole: at least
             one inferred symbol value changed *)
          Hashtbl.fold
            (fun k v acc ->
              acc || Hashtbl.find_opt clean k <> Some v)
            inference false
        end)

let suite =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest prop_runpre_self_match;
        QCheck_alcotest.to_alcotest prop_hot_update_equivalence;
        QCheck_alcotest.to_alcotest prop_objdump_total;
        QCheck_alcotest.to_alcotest prop_mutation_detected;
      ] );
  ]
