(* Edge-case tests for apply/undo: post-apply verification, hook faults,
   deep trampoline chains, and preservation of live state (static locals)
   across an update. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Image = Klink.Image
module Machine = Kernel.Machine
module Create = Ksplice.Create
module Apply = Ksplice.Apply

let t name f = Alcotest.test_case name `Quick f

let replace old_s new_s s =
  let rec find i =
    if i + String.length old_s > String.length s then
      Alcotest.failf "pattern %S not found" old_s
    else if String.sub s i (String.length old_s) = old_s then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ new_s
  ^ String.sub s (i + String.length old_s)
      (String.length s - i - String.length old_s)

let base_src =
  {|
int ticket_base = 100;
int next_ticket() {
  static int counter = 0;
  counter = counter + 1;
  return ticket_base + counter;
}
int peek(int v) {
  int acc = 0;
  int i;
  for (i = 0; i < v; i = i + 1)
    acc = acc + ticket_base;
  return acc;
}
|}

let boot src =
  let tree = Tree.of_list [ ("k/t.c", src) ] in
  let build = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree in
  let img = Image.link_exn ~base:0x100000 (Kbuild.objects build) in
  (tree, img, Machine.create img)

let call m img name args =
  let sym = Option.get (Image.lookup_global img name) in
  match Machine.call_function m ~addr:sym.addr ~args with
  | Ok v -> v
  | Error f -> Alcotest.failf "%s faulted: %a" name Machine.pp_fault f

let mk_update ~id tree tree' =
  match
    Create.create
      { source = tree; patch = Diff.diff_trees tree tree'; update_id = id;
        description = id }
  with
  | Ok c -> c.update
  | Error e -> Alcotest.failf "create: %a" Create.pp_error e

let test_static_local_state_preserved () =
  (* live static-local state must survive a hot update of its function:
     the §6.3 capability "changes to functions with static local
     variables" that source-level systems cannot provide *)
  let tree, img, m = boot base_src in
  Alcotest.(check int32) "first ticket" 101l (call m img "next_ticket" []);
  Alcotest.(check int32) "second ticket" 102l (call m img "next_ticket" []);
  let tree' =
    Tree.add tree "k/t.c"
      (replace "return ticket_base + counter;"
         "return ticket_base + counter + 1000;"
         (Option.get (Tree.find tree "k/t.c")))
  in
  let u = mk_update ~id:"ticket" tree tree' in
  let mgr = Apply.init m in
  (match Apply.apply mgr u with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "apply: %a" Apply.pp_error e);
  (* counter continues from 2: live state preserved, new behaviour *)
  Alcotest.(check int32) "third ticket, patched" 1103l
    (call m img "next_ticket" []);
  (match Apply.undo mgr "ticket" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "undo: %a" Apply.pp_error e);
  Alcotest.(check int32) "fourth ticket, restored code, kept state" 104l
    (call m img "next_ticket" [])

let test_verify_clean_and_damaged () =
  let tree, _img, m = boot base_src in
  let tree' =
    Tree.add tree "k/t.c"
      (replace "acc = acc + ticket_base;" "acc = acc + ticket_base + 1;"
         (Option.get (Tree.find tree "k/t.c")))
  in
  let u = mk_update ~id:"peek" tree tree' in
  let mgr = Apply.init m in
  let a =
    match Apply.apply mgr u with
    | Ok a -> a
    | Error e -> Alcotest.failf "apply: %a" Apply.pp_error e
  in
  (match Apply.verify mgr with
   | Ok () -> ()
   | Error e -> Alcotest.failf "verify after apply: %a" Apply.pp_error e);
  (* stomp the trampoline: verification must notice *)
  let r = List.hd a.replacements in
  let saved = Machine.read_bytes m r.r_old_addr 5 in
  Machine.write_bytes m r.r_old_addr (Bytes.make 1 '\x01' (* nop *));
  (match Apply.verify mgr with
   | Error (Apply.Integrity _) -> ()
   | Ok () -> Alcotest.fail "verify missed a stomped trampoline"
   | Error e -> Alcotest.failf "unexpected: %a" Apply.pp_error e);
  Machine.write_bytes m r.r_old_addr saved;
  (* stomp replacement code *)
  let mid = r.r_new_addr + 7 in
  let saved2 = Machine.read_bytes m mid 1 in
  Machine.write_bytes m mid (Bytes.make 1 '\xEE');
  (match Apply.verify mgr with
   | Error (Apply.Integrity _) -> ()
   | _ -> Alcotest.fail "verify missed damaged replacement code");
  Machine.write_bytes m mid saved2;
  match Apply.verify mgr with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verify after repair: %a" Apply.pp_error e

let test_trampoline_chain_depth3 () =
  (* three stacked updates of one function: calls traverse the chain *)
  let tree, img, m = boot base_src in
  let mgr = Apply.init m in
  let bump n tree =
    Tree.add tree "k/t.c"
      (replace "acc = acc + ticket_base;"
         (Printf.sprintf "acc = acc + ticket_base + %d;" n)
         (Option.get (Tree.find tree "k/t.c")))
  in
  Alcotest.(check int32) "base" 300l (call m img "peek" [ 3l ]);
  let t1 = bump 1 tree in
  let u1 = mk_update ~id:"u1" tree t1 in
  (match Apply.apply mgr u1 with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "u1: %a" Apply.pp_error e);
  Alcotest.(check int32) "depth 1" 303l (call m img "peek" [ 3l ]);
  let t2 =
    Tree.add t1 "k/t.c"
      (replace "ticket_base + 1;" "ticket_base + 10;"
         (Option.get (Tree.find t1 "k/t.c")))
  in
  let u2 = mk_update ~id:"u2" t1 t2 in
  (match Apply.apply mgr u2 with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "u2: %a" Apply.pp_error e);
  Alcotest.(check int32) "depth 2" 330l (call m img "peek" [ 3l ]);
  let t3 =
    Tree.add t2 "k/t.c"
      (replace "ticket_base + 10;" "ticket_base + 100;"
         (Option.get (Tree.find t2 "k/t.c")))
  in
  let u3 = mk_update ~id:"u3" t2 t3 in
  (match Apply.apply mgr u3 with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "u3: %a" Apply.pp_error e);
  Alcotest.(check int32) "depth 3" 600l (call m img "peek" [ 3l ]);
  (match Apply.verify mgr with
   | Ok () -> ()
   | Error e -> Alcotest.failf "verify chain: %a" Apply.pp_error e);
  (* unwind the whole chain *)
  List.iter
    (fun id ->
      match Apply.undo mgr id with
      | Ok () -> ()
      | Error e -> Alcotest.failf "undo %s: %a" id Apply.pp_error e)
    [ "u3"; "u2"; "u1" ];
  Alcotest.(check int32) "fully unwound" 300l (call m img "peek" [ 3l ])

let test_hook_fault_aborts () =
  (* a custom hook that faults must abort the apply with Hook_fault *)
  let tree, _img, m = boot base_src in
  let tree' =
    Tree.add tree "k/t.c"
      (replace "return ticket_base + counter;"
         "return ticket_base + counter + 1;"
         (Option.get (Tree.find tree "k/t.c"))
       ^ {|
void bad_hook() {
  int *p = (int*)0;
  *p = 1;
}
ksplice_pre_apply(bad_hook);
|})
  in
  let u = mk_update ~id:"badhook" tree tree' in
  let mgr = Apply.init m in
  match Apply.apply mgr u with
  | Error (Apply.Hook_fault (_, Machine.Memory_violation _)) -> ()
  | Ok _ -> Alcotest.fail "expected hook fault"
  | Error e -> Alcotest.failf "unexpected error: %a" Apply.pp_error e

let test_verify_empty_manager () =
  let _, _, m = boot base_src in
  match Apply.verify (Apply.init m) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verify empty: %a" Apply.pp_error e

let suite =
  [
    ( "apply-edge",
      [
        t "static local state preserved" test_static_local_state_preserved;
        t "verify clean and damaged" test_verify_clean_and_damaged;
        t "trampoline chain depth 3" test_trampoline_chain_depth3;
        t "hook fault aborts" test_hook_fault_aborts;
        t "verify empty manager" test_verify_empty_manager;
      ] );
  ]
