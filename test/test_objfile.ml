(* Tests for the SELF object format: relocation math, serialisation
   round-trips, and symbol/section queries. *)

module Reloc = Objfile.Reloc
module Symbol = Objfile.Symbol
module Section = Objfile.Section

let check = Alcotest.check
let bool_c = Alcotest.bool
let int32_c = Alcotest.int32

(* §4.3 worked example: val = 00111100, P_run = f0000003, A = -4
   => S = f0111107. *)
let test_paper_example () =
  let s =
    Reloc.infer_sym_value ~kind:Reloc.Pc32 ~stored:0x00111100l ~addend:(-4l)
      ~place:0xf0000003l
  in
  check int32_c "paper §4.3 symbol inference" 0xf0111107l s

let test_stored_inverse_abs () =
  let sym_value = 0x00345678l and addend = 12l and place = 0x108844l in
  let stored = Reloc.stored_value ~kind:Reloc.Abs32 ~sym_value ~addend ~place in
  check int32_c "abs32 stored" (Int32.add sym_value addend) stored;
  let s = Reloc.infer_sym_value ~kind:Reloc.Abs32 ~stored ~addend ~place in
  check int32_c "abs32 inference inverts" sym_value s

let test_stored_inverse_pc () =
  let sym_value = 0x00108000l and addend = -4l and place = 0x00104001l in
  let stored = Reloc.stored_value ~kind:Reloc.Pc32 ~sym_value ~addend ~place in
  let s = Reloc.infer_sym_value ~kind:Reloc.Pc32 ~stored ~addend ~place in
  check int32_c "pc32 inference inverts" sym_value s

let prop_infer_inverts_stored =
  let open QCheck2.Gen in
  let i32 = map Int32.of_int (int_range (-1_000_000_000) 1_000_000_000) in
  let gen = tup4 (oneofl [ Reloc.Abs32; Reloc.Pc32 ]) i32 i32 i32 in
  QCheck2.Test.make ~name:"reloc inference inverts relocation" ~count:500 gen
    (fun (kind, sym_value, addend, place) ->
      let stored = Reloc.stored_value ~kind ~sym_value ~addend ~place in
      Int32.equal (Reloc.infer_sym_value ~kind ~stored ~addend ~place)
        sym_value)

let sample_object () =
  let text_data = Bytes.of_string "\x01\x42\x01\x42\x01" in
  let text =
    Section.make ~name:".text.f" ~kind:Section.Text ~align:4 text_data
      [
        { Reloc.offset = 1; kind = Reloc.Pc32; sym = "callee"; addend = -4l };
        { Reloc.offset = 3; kind = Reloc.Abs32; sym = "debug"; addend = 0l };
      ]
  in
  let data =
    Section.make ~name:".data" ~kind:Section.Data ~align:4
      (Bytes.of_string "\x2a\x00\x00\x00") []
  in
  let bss = Section.make_bss ~name:".bss" ~align:4 64 in
  let symbols =
    [
      Symbol.make ~binding:Symbol.Global ~size:5 ~kind:`Func ~name:"f"
        (Some { Symbol.section = ".text.f"; value = 0 });
      Symbol.make ~binding:Symbol.Local ~size:4 ~kind:`Object ~name:"debug"
        (Some { Symbol.section = ".data"; value = 0 });
      Symbol.make ~binding:Symbol.Local ~size:64 ~kind:`Object ~name:"buf"
        (Some { Symbol.section = ".bss"; value = 0 });
      Symbol.make ~name:"callee" None;
    ]
  in
  Objfile.make ~unit_name:"sample.c" ~sections:[ text; data; bss ] ~symbols

let test_serialisation_roundtrip () =
  let o = sample_object () in
  let o' = Objfile.of_bytes_exn (Objfile.to_bytes o) in
  check Alcotest.string "unit name" o.unit_name o'.unit_name;
  check Alcotest.int "sections" (List.length o.sections)
    (List.length o'.sections);
  check Alcotest.int "symbols" (List.length o.symbols)
    (List.length o'.symbols);
  List.iter2
    (fun (a : Section.t) (b : Section.t) ->
      check Alcotest.string "section name" a.name b.name;
      check bool_c "section contents" true (Section.equal_contents a b))
    o.sections o'.sections;
  check bool_c "symbols equal" true (o.symbols = o'.symbols)

let test_file_roundtrip () =
  let o = sample_object () in
  let path = Filename.temp_file "selfobj" ".o" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Objfile.write_file path o;
      let o' = Objfile.read_file path in
      check bool_c "file roundtrip symbols" true (o.symbols = o'.symbols))

let test_bad_magic () =
  (match Objfile.of_bytes (Bytes.of_string "NOTSELF_____") with
   | Ok _ -> Alcotest.fail "bad magic accepted"
   | Error e ->
     check bool_c "reason mentions magic" true
       (String.length (Objfile.decode_error_to_string e) > 0));
  check bool_c "exn interface raises Failure" true
    (try
       ignore (Objfile.of_bytes_exn (Bytes.of_string "NOTSELF_____"));
       false
     with Failure _ -> true)

let test_truncated_input () =
  let b = Objfile.to_bytes (sample_object ()) in
  let cut = Bytes.sub b 0 (Bytes.length b - 7) in
  check bool_c "truncated rejected" true
    (Result.is_error (Objfile.of_bytes cut))

let test_queries () =
  let o = sample_object () in
  check bool_c "find_section hit" true
    (Option.is_some (Objfile.find_section o ".text.f"));
  check bool_c "find_section miss" true
    (Option.is_none (Objfile.find_section o ".nope"));
  check Alcotest.int "symbols_named debug" 1
    (List.length (Objfile.symbols_named o "debug"));
  check bool_c "undefined symbols" true
    (Objfile.undefined_symbols o = [ "callee" ]);
  let in_text = Objfile.defined_symbols_in o ".text.f" in
  check Alcotest.int "defined in text" 1 (List.length in_text)

let test_section_equal_contents () =
  let mk relocs data =
    Section.make ~name:".text" ~kind:Section.Text ~align:4
      (Bytes.of_string data) relocs
  in
  let r = { Reloc.offset = 0; kind = Reloc.Abs32; sym = "x"; addend = 0l } in
  check bool_c "equal" true (Section.equal_contents (mk [ r ] "ab") (mk [ r ] "ab"));
  check bool_c "bytes differ" false
    (Section.equal_contents (mk [ r ] "ab") (mk [ r ] "ac"));
  check bool_c "reloc sym differs" false
    (Section.equal_contents (mk [ r ] "ab")
       (mk [ { r with sym = "y" } ] "ab"));
  check bool_c "reloc addend differs" false
    (Section.equal_contents (mk [ r ] "ab")
       (mk [ { r with addend = 4l } ] "ab"))

let test_kind_of_name () =
  check bool_c "text" true (Section.kind_of_name ".text" = Section.Text);
  check bool_c "text.foo" true (Section.kind_of_name ".text.foo" = Section.Text);
  check bool_c "data" true (Section.kind_of_name ".data.x" = Section.Data);
  check bool_c "rodata" true (Section.kind_of_name ".rodata" = Section.Rodata);
  check bool_c "bss" true (Section.kind_of_name ".bss.v" = Section.Bss);
  check bool_c "ksplice note" true
    (Section.kind_of_name ".ksplice.apply" = Section.Note)

(* Fuzz: decoding is total — arbitrary bytes yield [Ok] or [Error],
   never any exception at all. *)
let prop_of_bytes_total =
  let open QCheck2.Gen in
  QCheck2.Test.make ~name:"of_bytes is total on garbage" ~count:300
    (string_size (int_range 0 200))
    (fun junk ->
      match Objfile.of_bytes (Bytes.of_string junk) with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* Every truncated prefix of a valid image is an [Error] (the full image
   is the only prefix that parses), with no exception escaping. *)
let test_every_prefix_rejected () =
  let b = Objfile.to_bytes (sample_object ()) in
  for n = 0 to Bytes.length b - 1 do
    match Objfile.of_bytes (Bytes.sub b 0 n) with
    | Ok _ -> Alcotest.failf "prefix of %d bytes parsed" n
    | Error _ -> ()
    | exception e ->
      Alcotest.failf "prefix of %d bytes raised %s" n (Printexc.to_string e)
  done

(* Fuzz: bit-flipping a valid image is either rejected or parses into
   *some* object (never raises). *)
let prop_bitflip_total =
  let open QCheck2.Gen in
  QCheck2.Test.make ~name:"of_bytes is total under bit flips" ~count:300
    (tup2 (int_range 0 10_000) (int_range 0 7))
    (fun (pos, bit) ->
      let b = Objfile.to_bytes (sample_object ()) in
      let pos = pos mod Bytes.length b in
      Bytes.set_uint8 b pos (Bytes.get_uint8 b pos lxor (1 lsl bit));
      match Objfile.of_bytes b with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let suite =
  [
    ( "objfile",
      [
        Alcotest.test_case "paper §4.3 inference example" `Quick
          test_paper_example;
        Alcotest.test_case "abs32 stored/infer" `Quick test_stored_inverse_abs;
        Alcotest.test_case "pc32 stored/infer" `Quick test_stored_inverse_pc;
        QCheck_alcotest.to_alcotest prop_infer_inverts_stored;
        Alcotest.test_case "serialisation roundtrip" `Quick
          test_serialisation_roundtrip;
        Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
        Alcotest.test_case "bad magic" `Quick test_bad_magic;
        Alcotest.test_case "truncated input" `Quick test_truncated_input;
        Alcotest.test_case "queries" `Quick test_queries;
        Alcotest.test_case "section content equality" `Quick
          test_section_equal_contents;
        Alcotest.test_case "kind_of_name" `Quick test_kind_of_name;
        QCheck_alcotest.to_alcotest prop_of_bytes_total;
        Alcotest.test_case "every truncated prefix rejected" `Quick
          test_every_prefix_rejected;
        QCheck_alcotest.to_alcotest prop_bitflip_total;
      ] );
  ]
