(* Tests for the update-distribution repository (§8 future work):
   publishing chained updates, pending computation, a subscriber syncing
   a live kernel through multiple hops, and graceful degradation when an
   entry blob is truncated or bit-flipped on disk. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Repo = Ksplice.Repository
module Apply = Ksplice.Apply
module Create = Ksplice.Create
module Image = Klink.Image
module Machine = Kernel.Machine

let t name f = Alcotest.test_case name `Quick f

let base_tree =
  Tree.of_list
    [ ( "kernel/k.c",
        "int level = 1;\n\
         int probe(int x) {\n\
        \  int acc = 0;\n\
        \  int i;\n\
        \  for (i = 0; i < x; i = i + 1)\n\
        \    acc = acc + level;\n\
        \  return acc;\n\
         }\n" ) ]

let replace old_s new_s s =
  let rec find i =
    if i + String.length old_s > String.length s then
      Alcotest.failf "pattern %S not found" old_s
    else if String.sub s i (String.length old_s) = old_s then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ new_s
  ^ String.sub s (i + String.length old_s)
      (String.length s - i - String.length old_s)

let edit tree f =
  Tree.add tree "kernel/k.c" (f (Option.get (Tree.find tree "kernel/k.c")))

let mk_update ~id ~from ~to_ =
  match
    Create.create
      { source = from; patch = Diff.diff_trees from to_; update_id = id;
        description = id }
  with
  | Ok c -> c.update
  | Error e -> Alcotest.failf "create %s: %a" id Create.pp_error e

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Repo.pp_error e

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_repo f =
  let dir = Filename.temp_file "ksplrepo" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir (ok "open_dir" (Repo.open_dir dir)))

(* three successive source states *)
let tree1 =
  edit base_tree (replace "acc = acc + level;" "acc = acc + level + 1;")

let tree2 = edit tree1 (replace "int level = 1;" "int level = 1;\nint spare;")

let publish_chain repo =
  let u1 = mk_update ~id:"hop-1" ~from:base_tree ~to_:tree1 in
  let u2 = mk_update ~id:"hop-2" ~from:tree1 ~to_:tree2 in
  let e1 =
    ok "publish hop-1"
      (Repo.publish repo ~source:base_tree
         ~patch:(Diff.diff_trees base_tree tree1) ~update:u1)
  in
  let e2 =
    ok "publish hop-2"
      (Repo.publish repo ~source:tree1 ~patch:(Diff.diff_trees tree1 tree2)
         ~update:u2)
  in
  (e1, e2)

let pending repo ~digest = ok "pending" (Repo.pending repo ~digest)

let test_publish_and_pending () =
  with_repo (fun _dir repo ->
      let e1, e2 = publish_chain repo in
      Alcotest.(check string) "chain links" e1.next_digest e2.base_digest;
      let chain = pending repo ~digest:(Tree.digest base_tree) in
      Alcotest.(check (list string))
        "two pending from base" [ "hop-1"; "hop-2" ]
        (List.map (fun (e : Repo.entry) -> e.update.Ksplice.Update.update_id) chain);
      Alcotest.(check int)
        "one pending from tree1" 1
        (List.length (pending repo ~digest:(Tree.digest tree1)));
      Alcotest.(check int)
        "up to date at tree2" 0
        (List.length (pending repo ~digest:(Tree.digest tree2))))

let test_duplicate_publish_rejected () =
  with_repo (fun _dir repo ->
      let _ = publish_chain repo in
      let u = mk_update ~id:"dup" ~from:base_tree ~to_:tree1 in
      match
        Repo.publish repo ~source:base_tree
          ~patch:(Diff.diff_trees base_tree tree1) ~update:u
      with
      | Error (Repo.Already_published d) ->
        Alcotest.(check string) "names the digest" (Tree.digest base_tree) d
      | Ok _ -> Alcotest.fail "expected Already_published"
      | Error e -> Alcotest.failf "unexpected error: %a" Repo.pp_error e)

let boot_base () =
  let build = Kbuild.build_tree_exn ~options:Minic.Driver.run_build base_tree in
  let img = Image.link_exn ~base:0x100000 (Kbuild.objects build) in
  let m = Machine.create img in
  let mgr = Apply.init m in
  let call () =
    let sym = Option.get (Image.lookup_global img "probe") in
    match Machine.call_function m ~addr:sym.addr ~args:[ 4l ] with
    | Ok v -> v
    | Error f -> Alcotest.failf "probe: %a" Machine.pp_fault f
  in
  (mgr, call)

let test_subscriber_sync () =
  with_repo (fun _dir repo ->
      let _ = publish_chain repo in
      (* boot a kernel from the base source and subscribe *)
      let mgr, call = boot_base () in
      Alcotest.(check int32) "before sync" 4l (call ());
      (match Repo.sync repo mgr ~source:base_tree with
       | Ok r ->
         Alcotest.(check (list string))
           "both hops applied" [ "hop-1"; "hop-2" ]
           r.applied;
         Alcotest.(check string) "source advanced"
           (Tree.digest tree2)
           (Tree.digest r.new_source)
       | Error e -> Alcotest.failf "sync: %a" Repo.pp_error e);
      (* hop-1 changed the loop body: probe(4) = 4 * (level+1) = 8 *)
      Alcotest.(check int32) "after sync" 8l (call ());
      (* second sync is a no-op *)
      match Repo.sync repo mgr ~source:tree2 with
      | Ok { applied = []; _ } -> ()
      | Ok _ -> Alcotest.fail "expected no pending updates"
      | Error e -> Alcotest.failf "sync: %a" Repo.pp_error e)

let test_entry_roundtrip_on_disk () =
  with_repo (fun dir repo ->
      let e1, _ = publish_chain repo in
      (* a fresh handle must read back the same chain from disk alone *)
      let repo2 = ok "reopen" (Repo.open_dir ~share:false dir) in
      let chain = pending repo2 ~digest:e1.base_digest in
      Alcotest.(check int) "read back" 2 (List.length chain);
      let e = List.hd chain in
      Alcotest.(check string) "patch preserved" e.patch_text e1.patch_text)

(* --- corruption regression tests ---

   The entry for a source state is a content-addressed blob; reading
   re-digests it, so damage on disk must surface as Corrupt_entry (never
   a parse crash) and sync must leave the machine untouched. *)

let entry_blob_path dir repo base_digest =
  let blob =
    match Store.find_ref (Repo.store repo) ("entry:" ^ base_digest) with
    | Some d -> d
    | None -> Alcotest.fail "published entry has no ref"
  in
  Filename.concat (Filename.concat dir "blobs") blob

let slurp path = In_channel.with_open_bin path In_channel.input_all

let spit path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let check_degrades_gracefully dir ~base_digest =
  (* a fresh handle (empty memory tier) must see the damage;
     [share:false] opts out of the in-process registry so the reopen
     reads the damaged disk cold, like a separate process would *)
  let repo2 = ok "reopen" (Repo.open_dir ~share:false dir) in
  (match Repo.pending repo2 ~digest:base_digest with
  | Error (Repo.Corrupt_entry { digest; _ }) ->
    Alcotest.(check string) "corruption names the entry" base_digest digest
  | Ok _ -> Alcotest.fail "expected Corrupt_entry from pending"
  | Error e -> Alcotest.failf "unexpected error: %a" Repo.pp_error e);
  (* sync verifies the chain before applying anything *)
  let mgr, call = boot_base () in
  (match Repo.sync repo2 mgr ~source:base_tree with
  | Error (Repo.Corrupt_entry _) -> ()
  | Ok _ -> Alcotest.fail "expected Corrupt_entry from sync"
  | Error e -> Alcotest.failf "unexpected error: %a" Repo.pp_error e);
  Alcotest.(check int32) "machine untouched" 4l (call ())

let test_truncated_entry () =
  with_repo (fun dir repo ->
      let e1, _ = publish_chain repo in
      let path = entry_blob_path dir repo e1.base_digest in
      let raw = slurp path in
      spit path (String.sub raw 0 (String.length raw / 2));
      check_degrades_gracefully dir ~base_digest:e1.base_digest)

let test_bitflipped_entry () =
  with_repo (fun dir repo ->
      let e1, _ = publish_chain repo in
      let path = entry_blob_path dir repo e1.base_digest in
      let raw = Bytes.of_string (slurp path) in
      let i = Bytes.length raw / 2 in
      Bytes.set raw i (Char.chr (Char.code (Bytes.get raw i) lxor 0x40));
      spit path (Bytes.to_string raw);
      check_degrades_gracefully dir ~base_digest:e1.base_digest)

(* --- cumulative entries: one-hop atomic replace beside the chain --- *)

let collapse repo =
  ok "collapse"
    (Repo.publish_cumulative repo ~source:base_tree ~update_id:"cum-1"
       ~description:"collapse of hop-1 and hop-2")

let test_publish_cumulative () =
  with_repo (fun _dir repo ->
      let _ = publish_chain repo in
      let e = collapse repo in
      Alcotest.(check (list string))
        "supersedes the chain, oldest first" [ "hop-1"; "hop-2" ]
        e.update.Ksplice.Update.supersedes;
      Alcotest.(check string) "one hop to the chain head"
        (Tree.digest tree2) e.next_digest;
      (* the per-update chain stays intact for mid-chain subscribers *)
      Alcotest.(check int) "chain preserved" 2
        (List.length (pending repo ~digest:(Tree.digest base_tree)));
      (match
         Repo.publish_cumulative repo ~source:base_tree ~update_id:"cum-2"
           ~description:"again"
       with
      | Error (Repo.Already_published d) ->
        Alcotest.(check string) "names the digest" (Tree.digest base_tree) d
      | Ok _ -> Alcotest.fail "expected Already_published"
      | Error e -> Alcotest.failf "unexpected error: %a" Repo.pp_error e);
      (* nothing pending at the head: nothing to collapse *)
      match
        Repo.publish_cumulative repo ~source:tree2 ~update_id:"cum-3"
          ~description:"empty"
      with
      | Error (Repo.Patch_rejected _) -> ()
      | Ok _ -> Alcotest.fail "expected Patch_rejected"
      | Error e -> Alcotest.failf "unexpected error: %a" Repo.pp_error e)

let test_sync_prefers_cumulative () =
  with_repo (fun _dir repo ->
      let _ = publish_chain repo in
      let _ = collapse repo in
      let mgr, call = boot_base () in
      Alcotest.(check int32) "before sync" 4l (call ());
      (match Repo.sync repo mgr ~source:base_tree with
       | Ok r ->
         Alcotest.(check (list string))
           "one cumulative hop instead of the walk" [ "cum-1" ] r.applied;
         Alcotest.(check string) "source advanced to the head"
           (Tree.digest tree2)
           (Tree.digest r.new_source)
       | Error e -> Alcotest.failf "sync: %a" Repo.pp_error e);
      Alcotest.(check int32) "patched" 8l (call ());
      (* fsck covers the cumulative ref alongside the chain *)
      match Repo.fsck repo with
      | Ok r -> Alcotest.(check int) "three entries checked" 3 r.entries_checked
      | Error _ -> Alcotest.fail "fsck of a healthy repository failed")

let test_corrupt_cumulative_degrades () =
  with_repo (fun dir repo ->
      let _ = publish_chain repo in
      let e = collapse repo in
      let blob =
        match
          Store.find_ref (Repo.store repo) ("cumulative:" ^ e.base_digest)
        with
        | Some d -> d
        | None -> Alcotest.fail "collapse has no cumulative ref"
      in
      let path = Filename.concat (Filename.concat dir "blobs") blob in
      let raw = slurp path in
      spit path (String.sub raw 0 (String.length raw / 2));
      let repo2 = ok "reopen" (Repo.open_dir ~share:false dir) in
      (* the damage surfaces as a typed error, and the machine under a
         syncing manager is never touched *)
      let mgr, call = boot_base () in
      (match Repo.sync repo2 mgr ~source:base_tree with
      | Error (Repo.Corrupt_entry _) -> ()
      | Ok _ -> Alcotest.fail "expected Corrupt_entry from sync"
      | Error e -> Alcotest.failf "unexpected error: %a" Repo.pp_error e);
      Alcotest.(check int32) "machine untouched" 4l (call ());
      match Repo.fsck repo2 with
      | Ok _ -> Alcotest.fail "fsck missed the corrupt cumulative entry"
      | Error r ->
        Alcotest.(check bool) "fsck names the entry" true
          (List.exists (fun (d, _) -> String.equal d e.base_digest)
             r.corrupt_entries))

let suite =
  [
    ( "repository",
      [
        t "publish and pending" test_publish_and_pending;
        t "duplicate publish rejected" test_duplicate_publish_rejected;
        t "subscriber sync" test_subscriber_sync;
        t "entry roundtrip" test_entry_roundtrip_on_disk;
        t "truncated entry degrades gracefully" test_truncated_entry;
        t "bit-flipped entry degrades gracefully" test_bitflipped_entry;
        t "publish cumulative" test_publish_cumulative;
        t "sync prefers the cumulative hop" test_sync_prefers_cumulative;
        t "corrupt cumulative degrades gracefully"
          test_corrupt_cumulative_degrades;
      ] );
  ]
