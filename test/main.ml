let () =
  Alcotest.run "ksplice-repro"
    (Test_isa.suite @ Test_objfile.suite @ Test_asm.suite @ Test_patchfmt.suite @ Test_minic.suite @ Test_typecheck.suite @ Test_ksplice.suite @ Test_kbuild.suite @ Test_klink.suite @ Test_kernel.suite @ Test_runpre.suite @ Test_prepost.suite @ Test_properties.suite @ Test_objdump.suite @ Test_baseline.suite @ Test_apply_edge.suite @ Test_frag_props.suite @ Test_update_format.suite @ Test_store.suite @ Test_repository.suite @ Test_corpus.suite @ Test_faultinj.suite @ Test_manager.suite @ Test_parallel.suite @ Test_report.suite @ Test_trace.suite)
