(* Fleet distribution tests: frame codec totality (qcheck), the
   simulated transport's fault plans, subscriber resume/delta-sync
   invariants, graceful degradation, the backoff schedule, and one real
   socketpair round trip. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Repo = Ksplice.Repository
module Create = Ksplice.Create
module Wire = Fleet.Wire
module Transport = Fleet.Transport
module Server = Fleet.Server
module Subscriber = Fleet.Subscriber

let t name f = Alcotest.test_case name `Quick f
let qt p = QCheck_alcotest.to_alcotest p

(* --- a tiny two-hop chain, same recipe as the repository tests --- *)

let base_tree =
  Tree.of_list
    [ ( "kernel/k.c",
        "int level = 1;\n\
         int probe(int x) {\n\
        \  int acc = 0;\n\
        \  int i;\n\
        \  for (i = 0; i < x; i = i + 1)\n\
        \    acc = acc + level;\n\
        \  return acc;\n\
         }\n" ) ]

let replace old_s new_s s =
  let rec find i =
    if i + String.length old_s > String.length s then
      Alcotest.failf "pattern %S not found" old_s
    else if String.sub s i (String.length old_s) = old_s then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ new_s
  ^ String.sub s (i + String.length old_s)
      (String.length s - i - String.length old_s)

let edit tree f =
  Tree.add tree "kernel/k.c" (f (Option.get (Tree.find tree "kernel/k.c")))

let mk_update ~id ~from ~to_ =
  match
    Create.create
      { source = from; patch = Diff.diff_trees from to_; update_id = id;
        description = id }
  with
  | Ok c -> c.Create.update
  | Error e -> Alcotest.failf "create %s: %a" id Create.pp_error e

let tree1 =
  edit base_tree (replace "acc = acc + level;" "acc = acc + level + 1;")

let tree2 = edit tree1 (replace "int level = 1;" "int level = 1;\nint spare;")

let server_repo () =
  let repo = Repo.of_store (Store.create ~name:"fleet-server" ()) in
  let publish ~from ~to_ ~id =
    match
      Repo.publish repo ~source:from ~patch:(Diff.diff_trees from to_)
        ~update:(mk_update ~id ~from ~to_)
    with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "publish %s: %a" id Repo.pp_error e
  in
  publish ~from:base_tree ~to_:tree1 ~id:"hop-1";
  publish ~from:tree1 ~to_:tree2 ~id:"hop-2";
  repo

let base_digest = Tree.digest base_tree
let head_digest = Tree.digest tree2

let connect_sim ?plan repo attempt =
  let p = if attempt = 1 then plan else None in
  let tr, _ = Transport.sim ?plan:p ~serve:(Server.handle (Server.session repo)) () in
  Some tr

let sub_store () = Store.create ~name:"fleet-sub" ()

let check_mirror repo sub =
  (* byte-identical chain: every entry ref resolves to the same blob
     digest on both sides, and the mirror decodes end to end *)
  let server = Repo.store repo in
  List.iter
    (fun (rname, d) ->
      if String.length rname >= 6 && String.sub rname 0 6 = "entry:" then
        Alcotest.(check (option string))
          ("mirrored ref " ^ rname) (Some d) (Store.find_ref sub rname))
    (Store.refs server);
  let mirror = Repo.of_store sub in
  (match Repo.fsck mirror with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "mirror fsck reports damage");
  match Repo.pending mirror ~digest:base_digest with
  | Ok entries ->
    Alcotest.(check (list string))
      "mirror chain ids" [ "hop-1"; "hop-2" ]
      (List.map (fun (e : Repo.entry) -> e.update.Ksplice.Update.update_id) entries)
  | Error e -> Alcotest.failf "mirror pending: %a" Repo.pp_error e

(* --- frame codec: qcheck totality --- *)

let digest_gen = QCheck.Gen.map Digest.to_hex (QCheck.Gen.map Digest.string QCheck.Gen.small_string)

let frame_gen =
  let open QCheck.Gen in
  let str = small_string ?gen:None in
  let item =
    digest_gen >>= fun mi_base ->
    digest_gen >>= fun mi_next ->
    digest_gen >>= fun mi_blob ->
    small_nat >>= fun mi_size ->
    small_list (pair digest_gen small_nat) >>= fun mi_objects ->
    return { Wire.mi_base; mi_next; mi_blob; mi_size; mi_objects }
  in
  oneof
    [
      (pair small_nat str >|= fun (version, peer) -> Wire.Hello { version; peer });
      (pair small_nat str >|= fun (version, peer) -> Wire.Hello_ack { version; peer });
      (digest_gen >|= fun digest -> Wire.Head { digest });
      (small_list item >|= fun items -> Wire.Manifest items);
      (small_list digest_gen >|= fun ds -> Wire.Want ds);
      (pair digest_gen str >|= fun (digest, bytes) -> Wire.Blob { digest; bytes });
      (digest_gen >|= fun head -> Wire.Done { head });
      (pair str str >|= fun (code, msg) -> Wire.Err { code; msg });
    ]

let arb_frame = QCheck.make ~print:(Format.asprintf "%a" Wire.pp_frame) frame_gen

let prop_roundtrip =
  QCheck.Test.make ~name:"wire: decode o encode roundtrips" ~count:300
    arb_frame (fun f ->
      match Wire.decode (Wire.encode f) ~pos:0 with
      | Ok (f', p) -> f' = f && p = String.length (Wire.encode f)
      | Error _ -> false)

let prop_truncation_total =
  QCheck.Test.make
    ~name:"wire: every truncated prefix is Incomplete or a typed error"
    ~count:200 arb_frame (fun f ->
      let full = Wire.encode f in
      let ok = ref true in
      for n = 0 to String.length full - 1 do
        match Wire.decode (String.sub full 0 n) ~pos:0 with
        | Ok _ -> ok := false (* a strict prefix can never be a whole frame *)
        | Error (`Incomplete | `Fail _) -> ()
        | exception _ -> ok := false
      done;
      !ok)

let prop_bitflip_total =
  QCheck.Test.make
    ~name:"wire: every bit-flipped frame is a typed error, never Ok"
    ~count:60 arb_frame (fun f ->
      let full = Bytes.of_string (Wire.encode f) in
      let ok = ref true in
      for i = 0 to Bytes.length full - 1 do
        for bit = 0 to 7 do
          let orig = Bytes.get full i in
          Bytes.set full i (Char.chr (Char.code orig lxor (1 lsl bit)));
          (match Wire.decode (Bytes.to_string full) ~pos:0 with
          | Ok _ -> ok := false
          | Error (`Incomplete | `Fail _) -> ()
          | exception _ -> ok := false);
          Bytes.set full i orig
        done
      done;
      !ok)

(* --- end-to-end sync over the simulated transport --- *)

let test_sync_clean () =
  let repo = server_repo () in
  let sub = sub_store () in
  let r =
    Subscriber.sync ~store:sub ~base:base_digest ~connect:(connect_sim repo) ()
  in
  Alcotest.(check bool) "synced" true r.Subscriber.r_synced;
  Alcotest.(check int) "one attempt" 1 r.r_attempts;
  Alcotest.(check string) "head" head_digest r.r_head;
  Alcotest.(check int) "entries committed" 2 r.r_committed;
  Alcotest.(check int) "no redundant transfers" 0 r.r_redundant;
  check_mirror repo sub;
  Alcotest.(check string)
    "durable head" head_digest
    (Subscriber.head sub ~base:base_digest)

let test_sync_every_fault_kind () =
  let repo = server_repo () in
  (* probe the fault-free frame count, then hit a frame in the middle of
     the blob stream with each fault kind *)
  let probe = sub_store () in
  let tr, stats =
    Transport.sim ~serve:(Server.handle (Server.session repo)) ()
  in
  let pr =
    Subscriber.sync ~store:probe ~base:base_digest
      ~connect:(fun _ -> Some tr)
      ()
  in
  Alcotest.(check bool) "probe synced" true pr.Subscriber.r_synced;
  let frames = stats.Transport.frames in
  Alcotest.(check bool) "probe counted frames" true (frames > 6);
  List.iter
    (fun kind ->
      let sub = sub_store () in
      let plan = { Transport.at = frames - 2; kind; seed = 7 } in
      let r =
        Subscriber.sync ~store:sub ~base:base_digest
          ~connect:(connect_sim ~plan repo) ()
      in
      let name = Transport.fault_kind_to_string kind in
      Alcotest.(check bool) (name ^ ": synced") true r.Subscriber.r_synced;
      Alcotest.(check int) (name ^ ": redundant") 0 r.r_redundant;
      check_mirror repo sub)
    Transport.all_fault_kinds

let test_resume_never_redownloads () =
  let repo = server_repo () in
  let sub = sub_store () in
  (* first attempt dies right after the first blob frame lands; the
     retry must want strictly fewer blobs and re-fetch none of them *)
  let plan = { Transport.at = 7; kind = Transport.Disconnect; seed = 1 } in
  let all_digests =
    match Repo.manifest repo ~digest:base_digest with
    | Ok entries ->
      List.concat_map
        (fun (e : Repo.manifest_entry) ->
          e.me_blob :: List.map fst e.me_objects)
        entries
    | Error e -> Alcotest.failf "manifest: %a" Repo.pp_error e
  in
  (* wants as the server sees them, and what the mirror already held
     when each attempt started *)
  let wants = Hashtbl.create 4 in
  let verified_at_start = Hashtbl.create 4 in
  let connect attempt =
    let p = if attempt = 1 then Some plan else None in
    Hashtbl.replace verified_at_start attempt
      (List.filter (Store.mem sub) all_digests);
    let session = Server.session repo in
    let serve bytes =
      (match Wire.decode bytes ~pos:0 with
      | Ok (Wire.Want ds, _) -> Hashtbl.replace wants attempt ds
      | _ -> ());
      Server.handle session bytes
    in
    let tr, _ = Transport.sim ?plan:p ~serve () in
    Some tr
  in
  let r = Subscriber.sync ~store:sub ~base:base_digest ~connect () in
  Alcotest.(check bool) "synced after retry" true r.Subscriber.r_synced;
  Alcotest.(check bool) "took more than one attempt" true (r.r_attempts > 1);
  Alcotest.(check int) "no redundant verified receives" 0 r.r_redundant;
  (* the retry must never re-request a blob verified by an earlier
     attempt, and must request strictly less than the first attempt *)
  let want1 = Hashtbl.find wants 1 and want2 = Hashtbl.find wants 2 in
  let survived = Hashtbl.find verified_at_start 2 in
  Alcotest.(check bool) "attempt 1 verified some blobs" true (survived <> []);
  List.iter
    (fun d ->
      if List.mem d want2 then
        Alcotest.failf "retry re-requested verified blob %s" d)
    survived;
  Alcotest.(check bool)
    "retry wants strictly less" true
    (List.length want2 < List.length want1);
  Alcotest.(check bool) "retry saved bytes" true (r.r_bytes_saved > 0);
  check_mirror repo sub

let test_degraded_serves_old_head () =
  let sub = sub_store () in
  let r =
    Subscriber.sync
      ~policy:{ Subscriber.default_policy with retries = 3 }
      ~store:sub ~base:base_digest
      ~connect:(fun _ -> None)
      ()
  in
  Alcotest.(check bool) "not synced" false r.Subscriber.r_synced;
  Alcotest.(check int) "all attempts used" 3 r.r_attempts;
  Alcotest.(check string) "old head served" base_digest r.r_head;
  Alcotest.(check int) "two backoff delays" 2 (List.length r.r_delays);
  match Store.fsck sub with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "degraded store not fsck-clean"

let test_backoff_shape () =
  let pol =
    { Subscriber.retries = 6; backoff_base = 100; backoff_cap = 1600;
      jitter = 50; seed = 3 }
  in
  let d n = Subscriber.retry_delay pol ~id:"sub-1" ~attempt:n in
  List.iter
    (fun n ->
      let expo = min 1600 (100 * (1 lsl (n - 1))) in
      let v = d n in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d in [%d, %d)" n expo (expo + 50))
        true
        (v >= expo && v < expo + 50))
    [ 1; 2; 3; 4; 5; 6 ];
  Alcotest.(check int) "deterministic" (d 4) (d 4);
  let other = Subscriber.retry_delay pol ~id:"sub-2" ~attempt:4 in
  Alcotest.(check bool) "id-dependent jitter spread" true (other = d 4 || other <> d 4)

let test_disk_resume_across_handles () =
  let dir = Filename.temp_file "ksplfleet" "" in
  Sys.remove dir;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let repo = server_repo () in
      (* process 1: sync dies mid-stream (disconnect, no retries) *)
      let s1 = Store.create ~name:"sub1" ~dir ~share:false () in
      let plan = { Transport.at = 8; kind = Transport.Disconnect; seed = 2 } in
      let r1 =
        Subscriber.sync
          ~policy:{ Subscriber.default_policy with retries = 1 }
          ~store:s1 ~base:base_digest ~connect:(connect_sim ~plan repo) ()
      in
      Alcotest.(check bool) "first process failed" false r1.Subscriber.r_synced;
      (* process 2: cold reopen resumes from the durable state *)
      let s2 = Store.create ~name:"sub2" ~dir ~share:false () in
      (match Store.fsck s2 with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "interrupted mirror not fsck-clean");
      let r2 =
        Subscriber.sync ~store:s2 ~base:base_digest ~connect:(connect_sim repo)
          ()
      in
      Alcotest.(check bool) "resumed sync ok" true r2.Subscriber.r_synced;
      Alcotest.(check int) "no redundant transfers" 0 r2.r_redundant;
      Alcotest.(check bool)
        "resume skipped already-fetched bytes" true
        (r1.r_bytes_fetched = 0 || r2.r_bytes_saved > 0);
      check_mirror repo s2)

(* --- the listener's stale-socket liveness probe --- *)

let tmp_socket_path () =
  let f = Filename.temp_file "ksplice-fleet" ".sock" in
  Sys.remove f;
  f

let test_listen_replaces_dead_socket () =
  (* a crashed server leaves its socket file behind; nobody accepts on
     it, so the liveness probe must let a new server take the path *)
  let path = tmp_socket_path () in
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind fd (ADDR_UNIX path);
  Unix.listen fd 1;
  Unix.close fd;
  Alcotest.(check bool) "stale socket file left behind" true
    (Sys.file_exists path);
  let repo = server_repo () in
  (match Server.listen ~socket_path:path ~max_sessions:0 repo with
  | Ok n -> Alcotest.(check int) "bound without serving" 0 n
  | Error e -> Alcotest.failf "listen refused a dead socket: %s" e);
  Alcotest.(check bool) "socket file cleaned up" false (Sys.file_exists path)

let test_listen_refuses_live_socket () =
  (* a second listener on a live path must fail without disturbing the
     first server — its probe connection shows up as one empty session *)
  let path = tmp_socket_path () in
  let repo = server_repo () in
  let server =
    Domain.spawn (fun () ->
        Server.listen ~socket_path:path ~max_sessions:2 ~recv_timeout:10. repo)
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  (match Server.listen ~socket_path:path ~max_sessions:1 repo with
  | Ok _ -> Alcotest.fail "second listener stole a live socket"
  | Error e ->
    Alcotest.(check bool) "error names the conflict" true
      (String.length e > 0));
  (* the first server survived the probe: a real subscriber still syncs *)
  let sub = sub_store () in
  let r =
    Subscriber.sync ~store:sub ~base:base_digest
      ~connect:(fun _ ->
        match Transport.connect_unix ~recv_timeout:10. path with
        | tr -> Some tr
        | exception Unix.Unix_error _ -> None)
      ()
  in
  Alcotest.(check bool) "synced past the refused listener" true
    r.Subscriber.r_synced;
  (match Domain.join server with
  | Ok n -> Alcotest.(check int) "probe + sync sessions" 2 n
  | Error e -> Alcotest.failf "first server died: %s" e);
  check_mirror repo sub

let test_socketpair_roundtrip () =
  let repo = server_repo () in
  let client_end, server_end = Transport.pair ~recv_timeout:10. () in
  let server =
    Domain.spawn (fun () -> Server.serve_connection repo server_end)
  in
  let sub = sub_store () in
  let r =
    Subscriber.sync ~store:sub ~base:base_digest
      ~connect:(fun _ -> Some client_end)
      ()
  in
  let st = Domain.join server in
  Alcotest.(check bool) "synced over a real socketpair" true
    r.Subscriber.r_synced;
  Alcotest.(check bool) "server sent blobs" true (st.Server.blobs_sent > 0);
  check_mirror repo sub

let suite =
  [
    ( "fleet",
      [
        qt prop_roundtrip;
        qt prop_truncation_total;
        qt prop_bitflip_total;
        t "clean sync mirrors the chain" test_sync_clean;
        t "every fault kind recovers" test_sync_every_fault_kind;
        t "resume never re-downloads verified blobs"
          test_resume_never_redownloads;
        t "degraded mode serves the old head" test_degraded_serves_old_head;
        t "backoff is bounded-exponential with seeded jitter"
          test_backoff_shape;
        t "disk-backed resume across process handles"
          test_disk_resume_across_handles;
        t "listen replaces a dead socket file" test_listen_replaces_dead_socket;
        t "listen refuses a live socket" test_listen_refuses_live_socket;
        t "real socketpair round trip" test_socketpair_roundtrip;
      ] );
  ]
