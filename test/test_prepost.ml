(* Pre-post differencing tests: classification of changed/new/removed
   functions and data across two function-sections builds of one unit. *)

module Tree = Patchfmt.Source_tree
module Prepost = Ksplice.Prepost
module Section = Objfile.Section

let t name f = Alcotest.test_case name `Quick f
let slist = Alcotest.(list string)

let compile src =
  (Minic.Driver.compile_exn ~options:Minic.Driver.pre_build ~unit_name:"u.c" src).obj

let diff a b = Prepost.diff_unit ~pre:(compile a) ~post:(compile b)

let test_identical () =
  let src = "int v = 3;\nint get() { return v; }\n" in
  let d = diff src src in
  Alcotest.(check bool) "empty" true (Prepost.is_empty d)

let test_changed_function () =
  let a = "int f(int x) { return x + 1; }\nint g(int x) { return x; }\n" in
  let b = "int f(int x) { return x + 2; }\nint g(int x) { return x; }\n" in
  let d = diff a b in
  Alcotest.check slist "changed" [ "f" ] d.changed_functions;
  Alcotest.check slist "new" [] d.new_functions;
  Alcotest.check slist "removed" [] d.removed_functions

let test_new_and_removed () =
  let a = "int old_fn() { return 1; }\n" in
  let b = "int new_fn() { return 2; }\n" in
  let d = diff a b in
  Alcotest.check slist "new" [ "new_fn" ] d.new_functions;
  Alcotest.check slist "removed" [ "old_fn" ] d.removed_functions

let test_changed_data_detected () =
  let a = "int cfg = 1;\nint get() { return cfg; }\n" in
  let b = "int cfg = 2;\nint get() { return cfg; }\n" in
  let d = diff a b in
  Alcotest.check slist "data changed" [ "cfg" ] d.changed_data;
  (* the code is identical: only the datum differs *)
  Alcotest.check slist "no code change" [] d.changed_functions

let test_new_data () =
  let a = "int get() { return 0; }\n" in
  let b = "static int cache = 0;\nint get() { cache = cache + 1; return cache; }\n" in
  let d = diff a b in
  Alcotest.check slist "new data" [ "cache" ] d.new_data;
  Alcotest.check slist "function changed too" [ "get" ] d.changed_functions

let test_new_static_local () =
  (* a static local becomes a mangled unit-level datum *)
  let a = "int get() { return 0; }\n" in
  let b = "int get() { static int n = 0; n = n + 1; return n; }\n" in
  let d = diff a b in
  Alcotest.check slist "mangled static local" [ "get.n" ] d.new_data

let test_bss_size_change () =
  let a = "int buf[4];\nint get(int i) { return buf[i & 3]; }\n" in
  let b = "int buf[8];\nint get(int i) { return buf[i & 3]; }\n" in
  let d = diff a b in
  Alcotest.check slist "bss resize detected" [ "buf" ] d.changed_data

let test_reloc_only_change () =
  (* same bytes, different relocation target: must count as changed *)
  let a =
    "int x = 1;\nint y = 2;\nint get() { return x; }\n"
  in
  let b =
    "int x = 1;\nint y = 2;\nint get() { return y; }\n"
  in
  let d = diff a b in
  Alcotest.check slist "reloc change detected" [ "get" ] d.changed_functions

let test_section_name_helpers () =
  let text =
    Section.make ~name:".text.foo" ~kind:Section.Text ~align:4 Bytes.empty []
  in
  let data =
    Section.make ~name:".data.bar" ~kind:Section.Data ~align:4 Bytes.empty []
  in
  let bss = Section.make_bss ~name:".bss.baz" ~align:4 8 in
  Alcotest.(check (option string)) "fname" (Some "foo")
    (Prepost.fname_of_section text);
  Alcotest.(check (option string)) "data name" (Some "bar")
    (Prepost.dataname_of_section data);
  Alcotest.(check (option string)) "bss name" (Some "baz")
    (Prepost.dataname_of_section bss);
  Alcotest.(check (option string)) "text is not data" None
    (Prepost.dataname_of_section text)

let suite =
  [
    ( "prepost",
      [
        t "identical builds" test_identical;
        t "changed function" test_changed_function;
        t "new and removed" test_new_and_removed;
        t "changed data detected" test_changed_data_detected;
        t "new data" test_new_data;
        t "new static local" test_new_static_local;
        t "bss size change" test_bss_size_change;
        t "reloc-only change" test_reloc_only_change;
        t "section name helpers" test_section_name_helpers;
      ] );
  ]
